"""Distributed campaign execution over a shared work queue.

The campaign grid is embarrassingly parallel across machines, not just
across processes: :class:`~repro.core.runner.EpisodeTask` pickles, the
executor protocol is pluggable, and the JSONL checkpoint is already the
source of truth for completed work.  This module adds the missing piece —
a *broker* that hands tasks to whichever workers are attached:

* a **coordinator** (the machine running
  :class:`~repro.core.runner.ParallelCampaignRunner` with a
  :class:`QueueExecutor`) publishes the campaign context and every
  pending task into a broker, then folds finished records back into
  canonical grid order exactly as the in-process executors do;
* any number of **workers** (``avfi worker --queue-dir …`` /
  :func:`run_worker`, one per machine or several per machine) attach to
  the broker, claim tasks under per-task *leases*, heartbeat while an
  episode runs, append each finished :class:`~repro.core.campaign.RunRecord`
  to the shared JSONL checkpoint, and drain until the queue is idle;
* a worker that dies mid-episode simply stops heartbeating — its lease
  expires and the task is requeued automatically (by any other worker or
  the coordinator), so the campaign completes as long as *one* worker
  survives.

The reference broker is :class:`FilesystemBroker`: a shared directory
(local disk for same-machine workers, NFS or similar for a cluster).
Claims are atomic ``rename(2)`` moves, appends are single ``O_APPEND``
writes (see :func:`~repro.core.runner.append_jsonl_line`), and every
mutation is a file operation — no server process to operate.  The layout
is deliberately small and enumerable so a redis-style backend can
implement the same :class:`Broker` protocol later:

.. code-block:: text

    queue_dir/
      manifest.json     # campaign metadata (task count, lease, created_at)
      context.pkl       # pickled CampaignContext (builder, agent, faults)
      tasks/NNNNN_x.task     # pending EpisodeTask pickles (claim = rename away)
      claimed/NNNNN_x.task   # tasks currently leased to a worker
      leases/NNNNN_x.json    # the lease: worker id + heartbeat timestamp
      failed/NNNNN_x.task(.error.json)  # tasks whose execution raised
      quarantined/NNNNN_x.task(.error.json)  # poison tasks given up within budget
      workers/<worker>.json  # per-worker liveness heartbeats (observability)
      results.jsonl     # THE checkpoint: completed records + quarantine rows

Exactly-once is enforced at the *results* layer, not the queue layer: a
lease can expire after its worker actually finished (slow NFS, paused
VM), in which case two workers run the same episode and append two
records with the same identity.  Episodes are deterministic, so the
duplicates are byte-identical, and the runner's grid fold keeps the
first — the queue only has to guarantee at-least-once delivery.

Clock caveat: lease expiry compares worker heartbeat timestamps against
the local clock, so machines sharing a broker directory should be
NTP-synchronised to well under the lease duration (the 60 s default
leaves a comfortable margin).  As a guard against a worker whose clock
lags (it would stamp heartbeats "in the past" and look instantly
expired), expiry judges each lease by the *fresher* of its embedded
timestamp and the lease file's mtime — on typical shared mounts the
mtime is stamped server-side, one clock for everyone.  The
:class:`~repro.core.netqueue.TcpBroker` removes the caveat entirely:
the broker server stamps every heartbeat with its own clock.

Brokers other than the filesystem one are resolved by
:func:`~repro.core.netqueue.make_broker` — ``"tcp://host:port"``
selects a :class:`~repro.core.netqueue.TcpBroker` speaking
length-prefixed JSON frames to an ``avfi serve`` (or
:class:`~repro.core.netqueue.BrokerServer`) endpoint, and everything in
this module (:func:`run_worker`, :class:`QueueExecutor`,
``avfi queue-status``) accepts such a URL wherever it accepts a queue
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, Sequence

from contextlib import ExitStack

from .campaign import RunRecord
from .multiplex import EpisodeMultiplexer, multiplex_slot_size
from .outcomes import EpisodeFailure, EpisodeOutcome, reap_process
from .runner import (
    CampaignContext,
    EpisodeTask,
    _FailureBudget,
    _init_worker,
    append_jsonl_line,
    context_policy,
    record_identity,
    repair_jsonl_tail,
)

__all__ = [
    "Broker",
    "Claim",
    "FilesystemBroker",
    "QueueExecutor",
    "run_worker",
]


@dataclass
class Claim:
    """A task leased to one worker (returned by :meth:`Broker.claim`)."""

    name: str
    task: EpisodeTask
    worker_id: str
    lease_s: float


class Broker(Protocol):
    """What a queue backend must provide (filesystem today, redis later).

    The coordinator calls :meth:`publish`, :meth:`read_results`,
    :meth:`requeue_expired` and :meth:`failures`; workers call
    :meth:`load_context`, :meth:`claim`, :meth:`heartbeat`,
    :meth:`append_result`, :meth:`release`/:meth:`fail` and
    :meth:`requeue_expired`.  All methods must be safe under concurrent
    callers on different machines.
    """

    def publish(self, context: CampaignContext, tasks: Sequence[EpisodeTask]) -> None:
        """Make the campaign context and pending tasks claimable."""
        ...

    def load_context(self, timeout_s: float = 0.0) -> CampaignContext | None:
        """The published context, or ``None`` if none appears in time."""
        ...

    def claim(self, worker_id: str, lease_s: float | None = None) -> Claim | None:
        """Atomically take one pending task, or ``None`` if queue is empty."""
        ...

    def heartbeat(self, claim: Claim) -> None:
        """Refresh a claim's lease so it does not expire mid-episode."""
        ...

    def release(self, claim: Claim) -> bool:
        """Retire a finished claim; False if the lease had already expired."""
        ...

    def fail(
        self,
        claim: Claim,
        error: BaseException | None = None,
        failure: EpisodeFailure | None = None,
    ) -> None:
        """Park a claim whose execution failed.  ``failure`` carries the
        structured episode outcome (attempts already exhausted
        worker-side); a bare ``error`` is an infrastructure fault."""
        ...

    def requeue_expired(self) -> list[str]:
        """Return expired claims to the pending queue; list what moved."""
        ...

    def quarantine(self, name: str) -> None:
        """Retire a parked failed task for good (coordinator decision)."""
        ...

    def append_result(self, record: RunRecord) -> None:
        """Durably append one finished record to the shared checkpoint."""
        ...

    def append_failure(self, failure: EpisodeFailure) -> None:
        """Durably append one quarantine row to the shared checkpoint."""
        ...

    def read_results(self, offset: int) -> tuple[int, list[RunRecord]]:
        """New complete records past ``offset``; returns the next offset."""
        ...

    def failures(self) -> list[dict]:
        """Error reports of failed tasks (empty when all is well)."""
        ...


def _write_atomic(path: Path, data: bytes) -> None:
    """Write via a same-directory temp file + rename so readers never see
    a partial file (rename is atomic on POSIX filesystems, NFS included)."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class FilesystemBroker:
    """The reference :class:`Broker`: a shared directory, no server.

    Claiming is ``rename(tasks/X, claimed/X)`` — atomic, and it fails
    with ``FileNotFoundError`` for every worker but the winner.  Leases
    are small JSON files refreshed by the claimer's heartbeat thread;
    anyone may requeue a claim whose heartbeat is older than its lease.
    """

    def __init__(self, root: str | Path, lease_s: float = 60.0):
        self.root = Path(root)
        self.lease_s = float(lease_s)
        self.tasks_dir = self.root / "tasks"
        self.claimed_dir = self.root / "claimed"
        self.leases_dir = self.root / "leases"
        self.failed_dir = self.root / "failed"
        self.quarantined_dir = self.root / "quarantined"
        self.workers_dir = self.root / "workers"
        self.results_path = self.root / "results.jsonl"
        self.context_path = self.root / "context.pkl"
        self.manifest_path = self.root / "manifest.json"
        #: Optional archived CampaignSpec (JSON) — written by publish()
        #: when the campaign came from a declarative spec.
        self.spec_path = self.root / "spec.json"

    # -- layout --------------------------------------------------------

    def ensure_layout(self) -> None:
        for d in (self.tasks_dir, self.claimed_dir, self.leases_dir,
                  self.failed_dir, self.quarantined_dir, self.workers_dir):
            d.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _task_filename(task: EpisodeTask) -> str:
        # Grid index first so workers drain in roughly canonical order;
        # an identity digest after it so files are unique even if two
        # campaigns (accidentally) share a directory across resumes.
        digest = hashlib.sha1(repr(task.identity()).encode()).hexdigest()[:12]
        return f"{task.index:05d}_{digest}.task"

    def _list(self, directory: Path) -> list[str]:
        try:
            return sorted(n for n in os.listdir(directory) if n.endswith(".task"))
        except FileNotFoundError:
            return []

    # -- coordinator side ----------------------------------------------

    def publish(
        self,
        context: CampaignContext,
        tasks: Sequence[EpisodeTask],
        spec: dict | None = None,
    ) -> None:
        """Write the context and sync ``tasks/`` to the pending set.

        Re-publishing (a resumed coordinator) is safe: failed tasks are
        returned for retry, stale entries not in the new pending set are
        dropped — from ``tasks/`` *and* ``claimed/`` (an orphaned claim
        of an already-completed or foreign-config task would otherwise
        expire, requeue, and burn a worker on work outside this grid) —
        and currently-claimed tasks of this grid are left to their
        workers.

        ``spec`` (a serialised :class:`~repro.core.spec.CampaignSpec`)
        is archived as ``spec.json`` next to the pickled context: a
        human- and machine-readable record of what campaign this broker
        serves, portable across repro versions in a way the pickle is
        not.
        """
        self.publish_blobs(
            pickle.dumps(context),
            [(self._task_filename(task), pickle.dumps(task)) for task in tasks],
            spec=spec,
        )

    def publish_blobs(
        self,
        context_blob: bytes,
        named_tasks: Sequence[tuple[str, bytes]],
        spec: dict | None = None,
    ) -> None:
        """The serialisation-free half of :meth:`publish`: tasks arrive
        already pickled, each paired with its :meth:`_task_filename`.

        This is the surface the :class:`~repro.core.netqueue.BrokerServer`
        calls — the server moves opaque blobs between directories and
        never unpickles anything a client sent, so a broker endpoint can
        serve coordinators/workers running a different repro build (and
        an attacker-controlled frame cannot make the *server* execute a
        pickle; workers only ever unpickle what their coordinator
        published, which is the same trust the filesystem broker needs).
        """
        self.ensure_layout()
        if spec is not None:
            _write_atomic(
                self.spec_path, (json.dumps(spec, indent=2) + "\n").encode()
            )
        # Context and manifest land BEFORE the task files.  The ordering
        # is load-bearing: once a new task is claimable, the context it
        # must run under (and the manifest hash long-lived workers use to
        # notice a re-publish) is already visible — the reverse order
        # lets a worker claim a re-published task and execute it against
        # the previous campaign's fault objects, checkpointing wrong
        # results under the new fingerprint.  The cost is benign: a
        # worker attaching mid-publish may see the context with an empty
        # queue, but it keeps polling for ``idle_timeout`` (and task
        # files follow within milliseconds); a worker claiming a stale
        # task with the new context produces a foreign-fingerprint row
        # the grid fold ignores.
        _write_atomic(self.context_path, context_blob)
        _write_atomic(
            self.manifest_path,
            json.dumps(
                {
                    "n_tasks": len(named_tasks),
                    "lease_s": self.lease_s,
                    "created_at": time.time(),
                    "coordinator": f"{socket.gethostname()}:{os.getpid()}",
                    # Long-lived workers compare this to detect a
                    # re-publish with changed configuration and reload.
                    "context_sha": hashlib.sha1(context_blob).hexdigest(),
                }
            ).encode(),
        )
        self.requeue_failed()
        wanted = dict(named_tasks)
        existing = set(self._list(self.tasks_dir))
        claimed = set(self._list(self.claimed_dir))
        for name in existing - wanted.keys():
            (self.tasks_dir / name).unlink(missing_ok=True)
        for name in claimed - wanted.keys():
            # If a live worker still holds this orphan, its release()
            # simply reports the claim lost; a duplicate record dedupes.
            self._lease_path(name).unlink(missing_ok=True)
            (self.claimed_dir / name).unlink(missing_ok=True)
        for name, blob in wanted.items():
            if name in existing or name in claimed:
                continue
            _write_atomic(self.tasks_dir / name, blob)

    def manifest(self) -> dict | None:
        """The published campaign manifest, or ``None`` before publish."""
        try:
            return json.loads(self.manifest_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def requeue_failed(self) -> list[str]:
        """Move failed tasks back to pending (retry after a fix).

        The failed→pending round-trip preserves the task payload byte
        for byte (it is a rename) and clears the parked error report, so
        a retried task starts with a clean slate.
        """
        recovered = []
        for name in self._list(self.failed_dir):
            try:
                os.rename(self.failed_dir / name, self.tasks_dir / name)
            except FileNotFoundError:
                continue
            (self.failed_dir / f"{name}.error.json").unlink(missing_ok=True)
            recovered.append(name)
        return recovered

    # Backwards-compatible alias (pre-quarantine name).
    recover_failed = requeue_failed

    def quarantine(self, name: str) -> None:
        """Retire a parked failed task for good: the coordinator decided
        (within the campaign's failure budget) to give this episode up,
        so a later re-publish must NOT requeue it.  The task pickle and
        its error report move to ``quarantined/`` as the post-mortem
        artifact."""
        self.ensure_layout()
        try:
            os.rename(self.failed_dir / name, self.quarantined_dir / name)
        except FileNotFoundError:
            pass  # already quarantined (or requeued) by someone else
        error_name = f"{name}.error.json"
        try:
            os.rename(self.failed_dir / error_name, self.quarantined_dir / error_name)
        except FileNotFoundError:
            pass

    def failures(self) -> list[dict]:
        out = []
        try:
            names = sorted(os.listdir(self.failed_dir))
        except FileNotFoundError:
            return []
        for name in names:
            if not name.endswith(".error.json"):
                continue
            try:
                out.append(json.loads((self.failed_dir / name).read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return out

    def status(self) -> dict:
        """Queue counts, for logging and doctors."""
        return {
            "pending": len(self._list(self.tasks_dir)),
            "claimed": len(self._list(self.claimed_dir)),
            "failed": len(self._list(self.failed_dir)),
            "quarantined": len(self._list(self.quarantined_dir)),
            "results": len(self.result_identities()),
        }

    # -- worker side ---------------------------------------------------

    def context_blob(self) -> bytes | None:
        """The published context, still pickled (``None`` before publish).
        Servers relay this blob verbatim; only workers unpickle it."""
        try:
            return self.context_path.read_bytes()
        except FileNotFoundError:
            return None

    def load_context(self, timeout_s: float = 0.0) -> CampaignContext | None:
        deadline = time.monotonic() + timeout_s
        while True:
            blob = self.context_blob()
            if blob is not None:
                return pickle.loads(blob)
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.1)

    def claim_blob(
        self, worker_id: str, lease_s: float | None = None
    ) -> tuple[str, bytes, float] | None:
        """The serialisation-free half of :meth:`claim`: atomically take
        one pending task and return ``(name, task_blob, lease_s)`` with
        the lease already written — the blob stays opaque, so the
        :class:`~repro.core.netqueue.BrokerServer` can relay it to a
        remote worker without unpickling anything."""
        lease_s = float(lease_s if lease_s is not None else self.lease_s)
        for name in self._list(self.tasks_dir):
            claimed = self.claimed_dir / name
            try:
                os.rename(self.tasks_dir / name, claimed)
            except FileNotFoundError:
                continue  # another worker won this rename
            # Reset the claim's age NOW: the rename preserved the task
            # file's publish-time mtime, and until our lease file lands
            # the expiry check falls back to that mtime — a task that sat
            # pending longer than the lease would look instantly expired
            # and a concurrent requeue_expired() could steal it back.
            now = time.time()
            try:
                os.utime(claimed, (now, now))
            except FileNotFoundError:
                continue  # stolen in the utime window; harmless, move on
            except OSError:
                # utimensat with explicit times needs file ownership; a
                # worker running as a different user than the coordinator
                # (shared NFS dir) gets EPERM.  The lease write below
                # covers the age window within milliseconds anyway.
                pass
            try:
                blob = claimed.read_bytes()
            except FileNotFoundError:
                continue  # stolen before our lease landed; move on
            self._write_lease(name, worker_id, lease_s)
            return name, blob, lease_s
        return None

    def claim(self, worker_id: str, lease_s: float | None = None) -> Claim | None:
        claimed = self.claim_blob(worker_id, lease_s)
        if claimed is None:
            return None
        name, blob, lease_s = claimed
        return Claim(
            name=name, task=pickle.loads(blob), worker_id=worker_id, lease_s=lease_s
        )

    def _lease_path(self, name: str) -> Path:
        return self.leases_dir / f"{Path(name).stem}.json"

    def heartbeat(self, claim: Claim) -> None:
        self._write_lease(claim.name, claim.worker_id, claim.lease_s)

    def _write_lease(self, name: str, worker_id: str, lease_s: float) -> None:
        _write_atomic(
            self._lease_path(name),
            json.dumps(
                {
                    "task": name,
                    "worker": worker_id,
                    "heartbeat_at": time.time(),
                    "lease_s": lease_s,
                }
            ).encode(),
        )

    def release(self, claim: Claim) -> bool:
        return self.release_raw(claim.name)

    def release_raw(self, name: str) -> bool:
        self._lease_path(name).unlink(missing_ok=True)
        try:
            os.unlink(self.claimed_dir / name)
            return True
        except FileNotFoundError:
            # The lease expired and someone requeued the task while we
            # were (slowly) finishing; the rerun will dedupe by identity.
            return False

    def fail(
        self,
        claim: Claim,
        error: BaseException | None = None,
        failure: EpisodeFailure | None = None,
    ) -> None:
        """Park a failed claim with its error report.

        With ``failure`` (the worker already exhausted the retry policy)
        the report carries the structured outcome dict — the coordinator
        reads it back to decide quarantine-vs-abort.  A bare ``error``
        marks an infrastructure fault (context unloadable, broker I/O),
        which always aborts the campaign.
        """
        if error is None and failure is not None:
            error = failure.exception
        tb_text = failure.traceback_text if failure is not None else ""
        self.fail_raw(
            claim.name,
            claim.worker_id,
            error=repr(error) if error is not None else (
                failure.error if failure is not None else ""
            ),
            traceback_text=tb_text or traceback.format_exc(),
            failure=failure.to_dict() if failure is not None else None,
        )

    def fail_raw(
        self,
        name: str,
        worker_id: str,
        error: str,
        traceback_text: str,
        failure: dict | None = None,
    ) -> None:
        """:meth:`fail` with the report already flattened to strings and
        a dict — the wire-facing half (the broker server parks what a
        remote worker reports without reconstructing exceptions)."""
        self._lease_path(name).unlink(missing_ok=True)
        try:
            os.rename(self.claimed_dir / name, self.failed_dir / name)
        except FileNotFoundError:
            return  # requeued from under us; let the retry speak for itself
        _write_atomic(
            self.failed_dir / f"{name}.error.json",
            json.dumps(
                {
                    "task": name,
                    "worker": worker_id,
                    "error": error,
                    "traceback": traceback_text,
                    "failed_at": time.time(),
                    "failure": failure,
                }
            ).encode(),
        )

    def heartbeat_worker(
        self,
        worker_id: str,
        done: int,
        host: str | None = None,
        pid: int | None = None,
    ) -> None:
        """Per-worker liveness file (observability, not correctness).

        Callers are expected to have run :meth:`ensure_layout` once at
        attach — no per-beat mkdir chatter against a shared mount.
        ``host``/``pid`` override the local process identity — the broker
        server beats on behalf of remote TCP workers and must report
        *their* location, not its own.
        """
        _write_atomic(
            self.workers_dir / f"{worker_id}.json",
            json.dumps(
                {
                    "worker": worker_id,
                    "host": host if host is not None else socket.gethostname(),
                    "pid": pid if pid is not None else os.getpid(),
                    "heartbeat_at": time.time(),
                    "episodes_done": done,
                }
            ).encode(),
        )

    def workers(self) -> list[dict]:
        """Per-worker liveness rows (observability, not correctness).

        Each row is the worker's own heartbeat payload plus ``age_s``:
        seconds since the *fresher* of the embedded ``heartbeat_at`` and
        the heartbeat file's mtime, clamped non-negative.  Judging by the
        embedded timestamp alone turns clock skew into a lie — a worker
        whose clock lags by minutes would be reported stale (and a worker
        whose clock leads would look alive long after dying), even while
        it rewrites its heartbeat file every few seconds.  The mtime is
        stamped when the file lands (server-side on typical shared
        mounts), so a freshly-rewritten heartbeat always reads as fresh
        regardless of what clock the worker carries.
        """
        now = time.time()
        rows: list[dict] = []
        try:
            names = sorted(os.listdir(self.workers_dir))
        except FileNotFoundError:
            return rows
        for fname in names:
            if not fname.endswith(".json"):
                continue
            path = self.workers_dir / fname
            try:
                beat = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                rows.append(
                    {"worker": fname[:-5], "age_s": None, "error": "unreadable heartbeat"}
                )
                continue
            stamps = []
            heartbeat_at = beat.get("heartbeat_at")
            if isinstance(heartbeat_at, (int, float)):
                stamps.append(float(heartbeat_at))
            try:
                stamps.append(path.stat().st_mtime)
            except OSError:
                pass
            row = dict(beat) if isinstance(beat, dict) else {"worker": fname[:-5]}
            row["age_s"] = max(0.0, now - max(stamps)) if stamps else None
            rows.append(row)
        return rows

    # -- lease expiry --------------------------------------------------

    def _lease_expired(self, name: str, now: float) -> bool:
        try:
            lease = json.loads(self._lease_path(name).read_text())
            heartbeat_at = float(lease["heartbeat_at"]) + 0.0  # TypeError on junk
            lease_s = float(lease["lease_s"])
            # Same skew guard as workers(): a claimer whose clock lags
            # writes heartbeats stamped "in the past"; trusting the
            # embedded time alone would expire its lease the instant it
            # lands and requeue a task that is actively running (a
            # duplicate-execution storm).  The lease file is rewritten
            # every heartbeat, so its mtime tracks real freshness.
            try:
                heartbeat_at = max(heartbeat_at, self._lease_path(name).stat().st_mtime)
            except OSError:
                pass
            return heartbeat_at + lease_s < now
        except (FileNotFoundError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Claim without a readable lease: the claimer crashed between
            # rename and lease write (or tore the file); judge by the
            # claimed file's age with the default lease as grace.
            try:
                return now - (self.claimed_dir / name).stat().st_mtime > self.lease_s
            except FileNotFoundError:
                return False

    def requeue_expired(self) -> list[str]:
        now = time.time()
        requeued = []
        for name in self._list(self.claimed_dir):
            if not self._lease_expired(name, now):
                continue
            self._lease_path(name).unlink(missing_ok=True)
            try:
                os.rename(self.claimed_dir / name, self.tasks_dir / name)
            except FileNotFoundError:
                continue  # finished (or requeued) concurrently
            requeued.append(name)
        return requeued

    def live_leases(self) -> int:
        """Claims whose lease has not (yet) expired."""
        now = time.time()
        return sum(
            1 for name in self._list(self.claimed_dir)
            if not self._lease_expired(name, now)
        )

    def claimed_names(self) -> list[str]:
        """Task names currently in ``claimed/`` — the in-flight episodes.

        Names start with the 5-digit grid index
        (see :meth:`_task_filename`), which is how the campaign service
        maps a claim back to "episode N is running"."""
        return self._list(self.claimed_dir)

    def is_idle(self) -> bool:
        """No pending and no claimed tasks — nothing left to drain."""
        return not self._list(self.tasks_dir) and not self._list(self.claimed_dir)

    # -- results (the JSONL checkpoint) --------------------------------

    def repair_results(self) -> int:
        """Drop a torn final checkpoint line (crashed non-atomic writer
        or filesystem-level truncation) so appends can safely resume."""
        return repair_jsonl_tail(self.results_path)

    def append_result(self, record: RunRecord) -> None:
        self.append_row(record.to_dict())

    def append_failure(self, failure: EpisodeFailure) -> None:
        """Quarantine rows live in the same checkpoint as records — the
        ``outcome`` key is the discriminator, and
        :func:`~repro.core.runner.load_checkpoint_rows` folds both back
        (so a resumed campaign never re-runs a quarantined episode)."""
        self.append_row(failure.to_dict())

    def append_row(self, row: dict) -> None:
        """Durably append one already-serialised checkpoint row (the
        wire-facing half of the two appends above)."""
        append_jsonl_line(self.results_path, row)

    def checkpoint_rows(self) -> tuple[list[RunRecord], list[EpisodeFailure]]:
        """The full checkpoint, parsed — what a resuming coordinator
        folds to decide which episodes are still pending.  Local
        coordinators read the JSONL file directly; this method exists so
        a coordinator whose only access is a broker connection (the TCP
        client) can resume from the server-side checkpoint too."""
        from .runner import load_checkpoint_rows

        return load_checkpoint_rows(self.results_path)

    def read_results(self, offset: int) -> tuple[int, list[RunRecord]]:
        """Complete lines past ``offset``; a trailing partial line (an
        append in flight on another machine) stays unread until next poll.
        Lines that don't parse as records are skipped — foreign rows never
        match a grid identity anyway."""
        try:
            with open(self.results_path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except FileNotFoundError:
            return offset, []
        end = data.rfind(b"\n")
        if end < 0:
            return offset, []
        records = []
        for line in data[:end].split(b"\n"):
            if not line.strip():
                continue
            try:
                records.append(RunRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError):
                continue
        return offset + end + 1, records

    def result_identities(self) -> set[tuple[str, str, int, str]]:
        """Identities of every *settled* episode — completed records and
        quarantine rows alike (both mean "never run this again")."""
        records, failures = self.checkpoint_rows()
        return {record_identity(r) for r in records} | {
            record_identity(f) for f in failures
        }

    # -- artifacts (content-addressed warm-start blobs) ----------------

    @property
    def artifacts(self):
        """Content-addressed blob store under ``<root>/artifacts/`` —
        how NN agent weights ship *once per worker* instead of once per
        context pickle (see :mod:`repro.core.artifacts`).  Lazy so
        queue-only deployments never touch the directory."""
        from .artifacts import ArtifactStore

        return ArtifactStore(self.root / "artifacts")

    def artifact_put(self, sha: str, blob: bytes) -> str:
        return self.artifacts.put(blob, sha=sha)

    def artifact_get(self, sha: str) -> bytes | None:
        return self.artifacts.get(sha)

    def artifact_has(self, sha: str) -> bool:
        return self.artifacts.has(sha)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------


class _LeaseKeeper:
    """Background thread refreshing one claim's lease while it executes."""

    def __init__(self, broker: FilesystemBroker, claim: Claim):
        self._broker = broker
        self._claim = claim
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._claim.lease_s / 4.0, 0.05)
        while not self._stop.wait(interval):
            self._broker.heartbeat(self._claim)

    def __enter__(self) -> "_LeaseKeeper":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _sigterm_to_exit(signum, frame):
    raise SystemExit(143)


def run_worker(
    queue_dir: str | Path,
    worker_id: str | None = None,
    lease_s: float = 60.0,
    poll_s: float = 0.5,
    idle_timeout: float = 5.0,
    max_tasks: int | None = None,
    verbose: bool = False,
    broker: "FilesystemBroker | None" = None,
    chaos: dict | None = None,
    episodes_per_slot: int | None = None,
) -> int:
    """Attach to a broker directory and drain tasks until the queue is idle.

    This is what ``avfi worker --queue-dir DIR`` runs.  The loop:
    requeue any expired leases, claim a task, skip it if its identity is
    already in the results (a lease that expired *after* its worker
    finished), execute it under a heartbeating lease — honouring the
    campaign's :class:`~repro.core.outcomes.FaultTolerancePolicy`
    (retries with backoff, per-attempt wall-clock sandbox) via
    :func:`~repro.core.runner.attempt_task` — append the record to the
    shared checkpoint, release.  An episode whose attempts are exhausted
    parks the task in ``failed/`` with its structured
    :class:`~repro.core.outcomes.EpisodeFailure`; the *coordinator*
    decides quarantine-vs-abort (workers cannot see each other's
    failures, so the campaign-level budget cannot live here).

    ``queue_dir`` may also be a broker URL (``tcp://host:port``) — the
    worker then drains a remote :class:`~repro.core.netqueue.BrokerServer`
    instead of a shared directory (see
    :func:`~repro.core.netqueue.make_broker`).

    ``broker`` substitutes a pre-built broker (chaos tests wrap the
    filesystem one); ``chaos`` is a picklable kwargs dict — for
    :class:`~repro.core.chaos.ChaosBroker` on a filesystem broker, for
    :class:`~repro.core.chaos.NetworkChaos` on a TCP one (see
    :func:`~repro.core.chaos.apply_chaos`) — applied to this worker's
    own broker: the form local drain processes can receive across
    ``fork``.

    When the published campaign multiplexes
    (``context.episodes_per_slot > 1``, or an explicit
    ``episodes_per_slot`` override here), the worker claims up to a full
    slot of tasks per cycle and drains them through one
    :class:`~repro.core.multiplex.EpisodeMultiplexer` — every claim's
    lease heartbeats for the whole slot, and each episode's record/
    failure retires its own claim as it finishes.  Output stays
    byte-identical to single-task draining.

    Exits once ``tasks/`` and ``claimed/`` have stayed empty for
    ``idle_timeout`` seconds — i.e. nothing is pending and no live lease
    could still expire back into the queue.  Returns the number of
    episodes this worker completed.
    """
    worker_id = worker_id or default_worker_id()
    if broker is None:
        from .netqueue import make_broker  # deferred: netqueue imports this module

        broker = make_broker(queue_dir, lease_s=lease_s)
    if chaos:
        from .chaos import apply_chaos  # deferred: chaos imports this module

        broker = apply_chaos(broker, chaos)
    # QueueExecutor shuts local drain workers down with SIGTERM; turn it
    # into a normal SystemExit so ``finally`` blocks run — in particular
    # attempt_task's sandbox reap, which otherwise orphans a hung episode
    # child to sleep out its bounded hang.  Only the main thread may set
    # signal handlers; inside one (embedded/test use) keep the default.
    import signal

    previous_handler = None
    try:
        previous_handler = signal.signal(signal.SIGTERM, _sigterm_to_exit)
    except ValueError:
        pass
    try:
        return _drain(
            broker,
            worker_id,
            lease_s,
            poll_s,
            idle_timeout,
            max_tasks,
            verbose,
            episodes_per_slot,
        )
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)


def _drain(
    broker,
    worker_id: str,
    lease_s: float,
    poll_s: float,
    idle_timeout: float,
    max_tasks: int | None,
    verbose: bool,
    episodes_per_slot: int | None = None,
) -> int:
    context = broker.load_context(timeout_s=idle_timeout)
    if context is None:
        if verbose:
            print(f"[worker {worker_id}] no campaign published; exiting")
        return 0
    broker.ensure_layout()
    broker.repair_results()
    # Warm this worker's scene cache exactly like a pool worker would.
    _init_worker(context)
    policy = context_policy(context)
    context_sha = (broker.manifest() or {}).get("context_sha")
    done = 0
    idle_since: float | None = None
    # Incremental view of the results checkpoint for the finish-after-
    # expiry dedupe below: re-parsing the whole (growing) JSONL before
    # every claim would make the drain loop quadratic in campaign size.
    seen_identities: set[tuple[str, str, int, str]] = set()
    results_offset = 0
    # Liveness beats are observability only — rate-limit them like the
    # lease keeper instead of rewriting the file every poll iteration.
    beat_interval = max(lease_s / 4.0, 1.0)
    last_beat = float("-inf")
    # Expiry can only happen on a lease_s timescale; scanning claimed/
    # and leases/ every poll tick is pure shared-mount metadata chatter.
    scan_interval = max(poll_s, min(lease_s / 4.0, 5.0))
    last_scan = float("-inf")
    while True:
        now = time.monotonic()
        if now - last_beat >= beat_interval:
            broker.heartbeat_worker(worker_id, done)
            last_beat = now
        if now - last_scan >= scan_interval:
            broker.requeue_expired()
            last_scan = now
        claim = broker.claim(worker_id, lease_s)
        if claim is None:
            if broker.is_idle():
                if idle_since is None:
                    idle_since = time.monotonic()
                elif time.monotonic() - idle_since >= idle_timeout:
                    break
            else:
                idle_since = None
            time.sleep(poll_s)
            continue
        idle_since = None
        # A long-lived worker can outlive the campaign it attached to: a
        # re-publish against the same directory (retuned faults, new
        # suite) swaps the context, and executing new tasks against the
        # old injector objects would checkpoint wrong results under the
        # new fingerprints.  The manifest's context hash detects that.
        current_sha = (broker.manifest() or {}).get("context_sha")
        if current_sha != context_sha:
            fresh_context = broker.load_context()
            if fresh_context is not None:
                context = fresh_context
                _init_worker(context)
                policy = context_policy(context)
            context_sha = current_sha
            if verbose:
                print(f"[worker {worker_id}] campaign re-published; context reloaded")
        # Fill this worker's multiplexed slot: the published context
        # carries the campaign's episodes_per_slot, an explicit worker
        # override wins.  Slot size 1 degenerates to the classic
        # one-claim-at-a-time drain (the multiplexer's serial path).
        slot = (
            max(1, int(episodes_per_slot))
            if episodes_per_slot is not None
            else multiplex_slot_size(context)
        )
        if max_tasks is not None:
            slot = max(1, min(slot, max_tasks - done))
        claims = [claim]
        while len(claims) < slot:
            extra = broker.claim(worker_id, lease_s)
            if extra is None:
                break
            claims.append(extra)
        results_offset, fresh = broker.read_results(results_offset)
        seen_identities.update(record_identity(r) for r in fresh)
        runnable: list[Claim] = []
        for claim in claims:
            if claim.task.identity() in seen_identities:
                # A previous holder finished after losing its lease; the
                # record is already checkpointed — retire, don't re-run.
                broker.release(claim)
            else:
                runnable.append(claim)
        if not runnable:
            continue
        by_identity = {c.task.identity(): c for c in runnable}
        mux = EpisodeMultiplexer(context, episodes_per_slot=slot, policy=policy)
        try:
            with ExitStack() as leases:
                for claim in runnable:
                    leases.enter_context(_LeaseKeeper(broker, claim))
                for task, result in mux.run([c.task for c in runnable]):
                    claim = by_identity.pop(task.identity())
                    if isinstance(result, EpisodeFailure):
                        # Attempts exhausted: park the structured failure
                        # for the coordinator's budget decision.  Never
                        # appended to results here — only the coordinator
                        # may declare quarantine, and a budget-exceeded
                        # abort must leave the task resumable.
                        broker.fail(claim, failure=result)
                        if verbose:
                            print(
                                f"[worker {worker_id}] {claim.name} "
                                f"{result.outcome} after {result.attempts} "
                                f"attempt(s): {result.error}"
                            )
                        continue
                    record = result
                    broker.append_result(record)
                    broker.release(claim)
                    done += 1
                    if verbose:
                        status = "ok " if record.success else "FAIL"
                        print(
                            f"[worker {worker_id}] {claim.name} "
                            f"{record.injector:>12} {record.scenario:>8} "
                            f"{status} {record.n_violations} violations"
                        )
        except Exception as exc:  # noqa: BLE001 — infra error: park, keep draining
            # Claims whose episodes already finished were retired above;
            # everything still held parks with the error so the
            # coordinator sees it and a re-publish can retry.
            for claim in by_identity.values():
                broker.fail(claim, error=exc)
                if verbose:
                    print(f"[worker {worker_id}] {claim.name} FAILED: {exc!r}")
            continue
        if max_tasks is not None and done >= max_tasks:
            break
    broker.heartbeat_worker(worker_id, done)
    return done


# ----------------------------------------------------------------------
# Coordinator executor
# ----------------------------------------------------------------------


class QueueExecutor:
    """Queue-backed executor satisfying the runner's executor protocol.

    :meth:`run` publishes the pending grid into the broker, optionally
    spawns ``workers`` local drain processes (so ``backend="queue"``
    works standalone on one machine), then polls the shared results
    checkpoint and yields ``(task, record)`` pairs as remote workers land
    them — the runner folds these back into grid order exactly as with
    the in-process executors.  Expired leases are requeued from the
    coordinator as well, so a campaign survives worker deaths even when
    every other worker is busy.

    The broker's ``results.jsonl`` *is* the campaign checkpoint: the
    runner adopts it (``checkpoint_path``) and skips its own appends,
    since workers already wrote each record durably.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str | Path,
        workers: int = 0,
        lease_s: float = 60.0,
        poll_s: float = 0.2,
        stall_timeout: float | None = None,
        worker_idle_timeout: float = 5.0,
        chaos: dict | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0 (got {workers})")
        from .netqueue import is_broker_url, make_broker  # deferred: imports us

        self.broker = make_broker(queue_dir, lease_s=lease_s)
        # Keep broker URLs as strings: Path("tcp://h:p") collapses the
        # double slash, corrupting what _spawn_local_workers hands back
        # to run_worker.
        self.queue_dir = queue_dir if is_broker_url(queue_dir) else Path(queue_dir)
        self.workers = workers
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        #: Raise if no progress and no live lease for this long (None =
        #: wait forever for workers on other machines to attach).
        self.stall_timeout = stall_timeout
        self.worker_idle_timeout = float(worker_idle_timeout)
        #: ChaosBroker kwargs injected into each local drain worker
        #: (chaos testing; each worker gets a distinct derived seed).
        self.chaos = dict(chaos) if chaos else None
        self._spec: dict | None = None

    def publish_spec(self, spec: dict) -> None:
        """Attach a serialised campaign spec; archived at :meth:`run`'s
        publish as the broker's ``spec.json`` (see
        :meth:`FilesystemBroker.publish`)."""
        self._spec = spec

    @property
    def checkpoint_path(self) -> Path | None:
        """The shared JSONL checkpoint workers append to — ``None`` when
        the broker is remote (TCP): the checkpoint then lives on the
        server, reachable through :meth:`resume_rows` instead of as a
        local file the runner could adopt."""
        return getattr(self.broker, "results_path", None)

    def resume_rows(self):
        """``(records, failures)`` already in the broker's checkpoint —
        what the runner folds as completed work when it has no local
        checkpoint file to read (the remote-broker case)."""
        return self.broker.checkpoint_rows()

    def _spawn_local_workers(self) -> list:
        import multiprocessing

        procs = []
        for i in range(self.workers):
            chaos = None
            if self.chaos is not None:
                # Decorrelate workers: identical chaos schedules on every
                # worker would synchronise their misbehaviour instead of
                # exercising races.
                chaos = dict(self.chaos)
                chaos["seed"] = int(chaos.get("seed", 0)) + i
            proc = multiprocessing.Process(
                target=run_worker,
                kwargs=dict(
                    queue_dir=str(self.queue_dir),
                    worker_id=f"local-{os.getpid()}-{i}",
                    lease_s=self.lease_s,
                    poll_s=max(self.poll_s / 2.0, 0.05),
                    idle_timeout=self.worker_idle_timeout,
                    chaos=chaos,
                ),
                # Not daemonic: a policy with timeout_s forks sandbox
                # children per attempt, and daemonic processes may not
                # have children.  Shutdown is explicit (terminate→kill
                # escalation in run()'s finally) instead of implicit.
                daemon=False,
            )
            proc.start()
            procs.append(proc)
        return procs

    def run(
        self, context: CampaignContext, tasks: Sequence[EpisodeTask]
    ) -> Iterator[tuple[EpisodeTask, RunRecord | EpisodeFailure]]:
        """Yield ``(task, outcome)`` as workers complete episodes.

        Workers park terminal episode failures in ``failed/`` with their
        structured :class:`~repro.core.outcomes.EpisodeFailure`; this
        loop converts them within the campaign's failure budget — append
        the quarantine row to the shared checkpoint, retire the task to
        ``quarantined/``, yield it — and aborts once the budget is
        exceeded (or on any unstructured infrastructure failure), leaving
        the task parked so a re-publish retries it.  Completed records
        are yielded even when another task fails or the queue stalls —
        the runner checkpoints finished work first, then the error
        propagates, mirroring :class:`ProcessExecutor`'s drain semantics.
        """
        tasks = list(tasks)
        if not tasks:
            return
        by_identity = {task.identity(): task for task in tasks}
        pending = set(by_identity)
        policy = context_policy(context)
        budget = _FailureBudget(policy.failure_budget)
        self.broker.publish(context, tasks, spec=self._spec)
        procs = self._spawn_local_workers()
        offset = 0
        last_progress = time.monotonic()
        # Expiry/failure/lease scans read every lease file in claimed/;
        # on a shared mount that is metadata traffic other participants
        # pay for, and nothing there changes faster than lease_s anyway.
        scan_interval = max(self.poll_s, min(self.lease_s / 4.0, 5.0))
        last_scan = float("-inf")
        try:
            while pending:
                offset, fresh = self.broker.read_results(offset)
                progressed = False
                for record in fresh:
                    identity = record_identity(record)
                    if identity in pending:
                        pending.discard(identity)
                        progressed = True
                        yield by_identity[identity], record
                if not pending:
                    break
                now = time.monotonic()
                scan_due = now - last_scan >= scan_interval
                if scan_due:
                    last_scan = now
                    self.broker.requeue_expired()
                    for report in self.broker.failures():
                        fdict = report.get("failure")
                        if fdict is None:
                            # Unstructured park = infrastructure fault;
                            # no budget applies. Left parked: re-publish
                            # retries it after the operator intervenes.
                            raise RuntimeError(
                                f"queue worker {report.get('worker')} failed on "
                                f"{report.get('task')}: {report.get('error')}\n"
                                f"{report.get('traceback', '')}"
                            )
                        failure = EpisodeFailure.from_dict(fdict)
                        failure.traceback_text = report.get("traceback") or ""
                        identity = record_identity(failure)
                        if identity not in pending:
                            # Stale park (task of a previous publish, or
                            # a duplicate holder losing a race with a
                            # completed record): journal it and move on.
                            self.broker.quarantine(str(report.get("task")))
                            continue
                        if not budget.admit(failure):
                            failure.raise_error()
                        failure.outcome = EpisodeOutcome.QUARANTINED
                        self.broker.append_failure(failure)
                        self.broker.quarantine(str(report.get("task")))
                        pending.discard(identity)
                        progressed = True
                        yield by_identity[identity], failure
                if not pending:
                    break
                if progressed:
                    last_progress = now
                elif scan_due:
                    if self.broker.live_leases():
                        last_progress = now
                    elif procs and not any(p.is_alive() for p in procs):
                        # Inline mode: our own drain processes all exited
                        # (idle or crashed) yet episodes remain and nobody
                        # holds a lease — nothing will ever progress.
                        raise RuntimeError(
                            f"all {len(procs)} local queue workers exited with "
                            f"{len(pending)} episode(s) still pending "
                            f"(queue dir: {self.queue_dir})"
                        )
                if (
                    self.stall_timeout is not None
                    and time.monotonic() - last_progress > self.stall_timeout
                ):
                    raise RuntimeError(
                        f"queue stalled: no completed episode and no live "
                        f"worker lease for {self.stall_timeout:.0f}s "
                        f"({len(pending)} pending; queue dir: {self.queue_dir})"
                    )
                time.sleep(self.poll_s)
        finally:
            # Escalating shutdown: terminate, grace, kill, reap.  A drain
            # worker wedged in uninterruptible I/O used to be silently
            # abandoned after join(10) — now it is killed and the PID
            # reported, so nothing outlives the campaign unannounced.
            import sys

            for proc in procs:
                how = reap_process(
                    proc,
                    grace_s=10.0,
                    log=lambda msg: print(f"[queue] {msg}", file=sys.stderr, flush=True),
                )
                if how in ("killed", "leaked"):
                    print(
                        f"[queue] local worker pid={proc.pid} needed {how} "
                        f"during shutdown",
                        file=sys.stderr,
                        flush=True,
                    )
