"""Fault localisation: choosing *where* a fault lands.

Fig. 1 step 3: AVFI first selects the location of a fault (specific
neurons and layers in the IL-CNN, pixel regions of a camera frame, bits of
a word, a channel of the system) and then injects using a fault model.
:class:`FaultLocalizer` centralises those random draws under one seeded
generator so a campaign's fault placement is reproducible and reportable.

The fault-model classes can draw sites themselves (they each own an RNG);
the localizer exists for experiments that want explicit, logged control of
placement — its ``pick_*`` methods return small declarative site records
that can be stored in run traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PixelRegionSite",
    "WeightSite",
    "NeuronSite",
    "BitSite",
    "ChannelSite",
    "FaultLocalizer",
]


@dataclass(frozen=True)
class PixelRegionSite:
    """A rectangular image region (row, col, height, width)."""

    row: int
    col: int
    height: int
    width: int


@dataclass(frozen=True)
class WeightSite:
    """One scalar weight: parameter name plus flat index."""

    param: str
    flat_index: int


@dataclass(frozen=True)
class NeuronSite:
    """One output unit of one layer."""

    block: str
    layer_index: int
    unit: int


@dataclass(frozen=True)
class BitSite:
    """A bit position inside a 32-bit word."""

    bit: int


@dataclass(frozen=True)
class ChannelSite:
    """A communication channel of the system."""

    channel: str  # "sensor" | "control"


class FaultLocalizer:
    """Seeded source of fault sites."""

    def __init__(self, seed: int | np.random.Generator = 0):
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    # ------------------------------------------------------------------
    def pick_pixel_region(
        self, image_hw: tuple[int, int], size_frac: float = 0.3
    ) -> PixelRegionSite:
        """A random patch covering ``size_frac`` of each image dimension."""
        if not 0.0 < size_frac <= 1.0:
            raise ValueError("size_frac must be in (0, 1]")
        h, w = image_hw
        ph = max(1, int(h * size_frac))
        pw = max(1, int(w * size_frac))
        row = int(self.rng.integers(0, max(1, h - ph + 1)))
        col = int(self.rng.integers(0, max(1, w - pw + 1)))
        return PixelRegionSite(row, col, ph, pw)

    def pick_weights(self, model, n: int) -> list[WeightSite]:
        """``n`` weight sites drawn uniformly over all scalar weights."""
        if n < 1:
            raise ValueError("n must be positive")
        named = model.named_parameters()
        names = list(named)
        sizes = np.array([named[name].size for name in names], dtype=np.float64)
        probs = sizes / sizes.sum()
        sites = []
        for _ in range(n):
            pname = names[int(self.rng.choice(len(names), p=probs))]
            sites.append(WeightSite(pname, int(self.rng.integers(named[pname].size))))
        return sites

    def pick_neurons(
        self, model, n: int, block: str | None = None
    ) -> list[NeuronSite]:
        """``n`` neuron sites in parameterised layers of the model."""
        if n < 1:
            raise ValueError("n must be positive")
        blocks = model.submodules()
        block_names = [block] if block is not None else sorted(blocks)
        candidates: list[tuple[str, int, int]] = []  # (block, layer idx, width)
        for bname in block_names:
            for i, module in enumerate(blocks[bname].modules):
                params = module.parameters()
                if not params:
                    continue
                width = params[0].data.shape[-1]
                candidates.append((bname, i, int(width)))
        if not candidates:
            raise ValueError("model has no parameterised layers to target")
        sites = []
        for _ in range(n):
            bname, layer_idx, width = candidates[int(self.rng.integers(len(candidates)))]
            sites.append(NeuronSite(bname, layer_idx, int(self.rng.integers(width))))
        return sites

    def pick_bit(self, low: int = 0, high: int = 32) -> BitSite:
        """A bit position in ``[low, high)`` of a 32-bit word."""
        if not 0 <= low < high <= 32:
            raise ValueError("bit range must be within [0, 32)")
        return BitSite(int(self.rng.integers(low, high)))

    def pick_channel(self) -> ChannelSite:
        """One of the system's two channels, uniformly."""
        return ChannelSite("sensor" if self.rng.random() < 0.5 else "control")
