"""Command-line front end: ``avfi`` (or ``python -m repro``).

Subcommands:

* ``run`` — execute a declarative campaign spec (``avfi run spec.json``),
  with ``--workers``/``--queue-dir``/``--parquet`` overrides; the primary
  entry point;
* ``report`` — streaming metrics report over a results checkpoint
  (JSONL or parquet; ``--parquet`` forces the columnar reader), with
  per-injector metrics, baseline effects and compound-fault interaction
  effects — aggregation never materialises the record set, so it scales
  to million-episode files;
* ``spec emit`` — print the spec the built-in ``campaign``/``sweep-delay``
  commands would run (edit it, archive it, ``avfi run`` it);
* ``spec validate`` — load a spec (file or stdin) and report its hash;
* ``demo`` — one fault-free and one faulted episode with the autopilot
  (fast; no training);
* ``campaign`` — a named-injector campaign against the IL-CNN or
  autopilot (a thin wrapper that emits a spec and runs it);
* ``sweep-delay`` — the fig. 4 output-delay sweep (same wrapper);
* ``worker`` — attach this machine to a distributed queue campaign
  (``--queue-dir``) and drain tasks until the queue is idle;
* ``queue-status`` — one-shot health report for a queue directory
  (pending/claimed/failed/quarantined counts, worker liveness);
* ``train`` — collect demonstrations and train the IL-CNN;
* ``list-faults`` — every registered fault model, grouped by hook point,
  with its config parameters.
"""

from __future__ import annotations

import argparse
import json
import sys


def _fail(command: str, message) -> None:
    """Report a usage-level error (missing file, bad path) the way
    argparse does: one readable line on stderr, exit status 2.

    Distinct from mid-run failures (exceptions, exit 1): status 2 means
    "the invocation was wrong", which scripts and CI wrappers can
    branch on without parsing the message.
    """
    print(f"avfi {command}: {message}", file=sys.stderr)
    raise SystemExit(2)


def _int_at_least(minimum: int):
    """argparse type factory: a bounded integer rejected with a readable
    message (``--workers 0`` used to reach the executor and die with an
    opaque traceback)."""

    def parse(value: str) -> int:
        try:
            number = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
        if number < minimum:
            raise argparse.ArgumentTypeError(f"must be >= {minimum}, got {value}")
        return number

    return parse


_positive_int = _int_at_least(1)
#: ``--workers 0`` = coordinate only; :func:`main` additionally requires
#: a queue directory (flag or spec) for it.
_non_negative_int = _int_at_least(0)


def _positive_float(value: str) -> float:
    """argparse type: a finite float > 0 (leases, poll intervals...)."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if not number > 0 or number != number or number == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return number


def _add_suite_args(parser: argparse.ArgumentParser) -> None:
    """Scenario-suite and agent options shared by the spec-emitting
    commands (``campaign``, ``sweep-delay``, ``spec emit …``)."""
    parser.add_argument("--runs", type=_positive_int, default=4, help="missions per injector")
    parser.add_argument("--agent", choices=("nn", "autopilot"), default="autopilot")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--npc-vehicles", type=int, default=2)
    parser.add_argument("--pedestrians", type=int, default=2)


def _add_exec_args(
    parser: argparse.ArgumentParser,
    with_save: bool = True,
    workers_default: int | None = 1,
) -> None:
    """Execution options shared by everything that runs (or emits) a
    campaign.  ``avfi run`` passes ``workers_default=None`` so an
    unspecified flag defers to the spec's ``execution.workers``."""
    if with_save:
        parser.add_argument("--save", default=None, help="write records JSON here")
    parser.add_argument(
        "--workers",
        type=_non_negative_int,
        default=workers_default,
        help="worker processes for episode execution (1 = serial; with "
        "a queue dir: local drain workers spawned next to the coordinator, "
        "0 = coordinate only and wait for `avfi worker` machines to attach)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help="run through the distributed work queue rooted at this shared "
        "directory; other machines join with `avfi worker --queue-dir DIR`",
    )
    parser.add_argument(
        "--lease",
        type=_positive_float,
        default=None,
        help="queue task lease in seconds — a worker silent for this long "
        "loses its task back to the queue (only with a queue dir; "
        "default 60)",
    )
    parser.add_argument(
        "--episodes-per-slot",
        type=_positive_int,
        default=None,
        metavar="E",
        help="keep this many episodes live at once per process, batching "
        "their per-frame sensing across episodes (output stays "
        "byte-identical to serial; alone this multiplexes in-process, "
        "with --workers/--queue-dir each worker drains slots of this "
        "size; default 1)",
    )


def _add_common_campaign_args(parser: argparse.ArgumentParser) -> None:
    _add_suite_args(parser)
    _add_exec_args(parser)


# ----------------------------------------------------------------------
# Spec construction from CLI arguments (campaign / sweep-delay / emit)
# ----------------------------------------------------------------------


def _execution_spec_from_args(args):
    from .core.spec import ExecutionSpec

    queue_dir = getattr(args, "queue_dir", None)
    return ExecutionSpec(
        workers=getattr(args, "workers", None),
        backend="queue" if queue_dir else None,
        queue_dir=queue_dir,
        lease_s=getattr(args, "lease", None) if queue_dir else None,
        episodes_per_slot=getattr(args, "episodes_per_slot", None),
    )


def _suite_spec_from_args(args):
    from .core.spec import ScenarioSuiteSpec

    return ScenarioSuiteSpec(
        n=args.runs,
        seed=args.seed,
        n_npc_vehicles=args.npc_vehicles,
        n_pedestrians=args.pedestrians,
    )


def _campaign_spec_from_args(args):
    """The spec behind ``avfi campaign`` (the figs. 2-3 grid)."""
    from .core.faults import make_input_fault
    from .core.spec import AgentSpec, CampaignSpec

    injectors: dict[str, list] = {"none": []}
    for name in args.injectors:
        injectors[name] = [make_input_fault(name)]
    return CampaignSpec(
        name="input-fault-campaign",
        scenarios=_suite_spec_from_args(args),
        agent=AgentSpec(name=args.agent),
        injectors=injectors,
        execution=_execution_spec_from_args(args),
    )


def _sweep_delay_spec_from_args(args):
    """The spec behind ``avfi sweep-delay`` (the fig. 4 sweep)."""
    from .core.faults import OutputDelay
    from .core.spec import AgentSpec, CampaignSpec

    injectors = {
        f"delay-{k}": ([OutputDelay(k, mode=args.mode)] if k else [])
        for k in args.delays
    }
    return CampaignSpec(
        name="output-delay-sweep",
        scenarios=_suite_spec_from_args(args),
        agent=AgentSpec(name=args.agent),
        injectors=injectors,
        execution=_execution_spec_from_args(args),
    )


def _run_spec(spec, save: str | None = None, **overrides) -> None:
    """Execute a campaign spec and print the metrics table.

    The one execution path behind ``avfi run``, ``avfi campaign`` and
    ``avfi sweep-delay`` — the hard-coded commands run exactly what
    their emitted specs describe.
    """
    from .core import Campaign, format_table, metrics_by_injector

    campaign = Campaign.from_spec(spec, verbose=True, **overrides)
    if campaign.queue_dir and campaign.workers == 0:
        print(
            f"coordinating only: attach workers with\n"
            f"  python -m repro worker --queue-dir {campaign.queue_dir}"
        )
    result = campaign.run()
    if save:
        result.save(save)
        print(f"records -> {save}")
    metrics = metrics_by_injector(result.records)
    rows = [
        [n, m.n_runs, m.msr, m.vpk, m.apk, m.ttv_median_s if m.ttv_s else None]
        for n, m in metrics.items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK", "TTV_s"], rows))


def _require_queue_for_coordinate_only(parser_error, workers, queue_dir) -> None:
    """0 workers means "coordinate only", which only the queue backend
    can do — reject it with a readable message otherwise."""
    if workers == 0 and not queue_dir:
        parser_error("--workers 0 (coordinate only) requires --queue-dir")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def cmd_run(args) -> None:
    from pathlib import Path

    from .core.spec import SpecError, load_spec

    if not Path(args.spec).exists():
        _fail("run", f"no such spec file: {args.spec}")
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise SystemExit(f"avfi run: {exc}")
    fault_tolerance = _fault_tolerance_from_args(args, spec)
    workers = args.workers if args.workers is not None else spec.execution.workers
    queue_dir = args.queue_dir or spec.execution.queue_dir
    if workers == 0 and not queue_dir:
        raise SystemExit(
            "avfi run: --workers 0 (coordinate only) requires a queue "
            "directory (--queue-dir or the spec's execution.queue_dir)"
        )
    print(f"spec: {spec.name} (schema v1, hash {spec.hash()}) from {args.spec}")
    try:
        _run_spec(
            spec,
            save=args.save,
            workers=args.workers,
            queue_dir=args.queue_dir,
            lease_s=args.lease,
            checkpoint_path=args.checkpoint,
            parquet_path=args.parquet,
            fault_tolerance=fault_tolerance,
            episodes_per_slot=args.episodes_per_slot,
        )
    except (SpecError, ValueError) as exc:
        # Spec-derived construction errors (queue backend without a
        # queue dir, empty generated suite…) are user errors, not bugs —
        # report them like argparse would, no traceback.
        raise SystemExit(f"avfi run: {exc}")


def _fault_tolerance_from_args(args, spec):
    """Merge the ``avfi run`` retry flags over the spec's policy.

    Returns ``None`` when no flag was given, so the spec's own
    ``execution.fault_tolerance`` (or the abort-on-first-failure
    default) stays in force.
    """
    overrides = {
        key: value
        for key, value in (
            ("max_attempts", args.max_attempts),
            ("timeout_s", args.episode_timeout),
            ("failure_budget", args.failure_budget),
        )
        if value is not None
    }
    if not overrides:
        return None
    import dataclasses

    from .core.outcomes import FaultTolerancePolicy

    base = spec.execution.fault_tolerance or FaultTolerancePolicy()
    return dataclasses.replace(base, **overrides)


def cmd_spec_emit(args) -> None:
    builders = {
        "campaign": _campaign_spec_from_args,
        "sweep-delay": _sweep_delay_spec_from_args,
    }
    spec = builders[args.what](args)
    if args.out:
        from .core.spec import save_spec

        save_spec(spec, args.out)
        print(f"spec -> {args.out}")
    else:
        print(json.dumps(spec.to_dict(), indent=2))


def cmd_spec_validate(args) -> None:
    from .core.spec import SpecError, load_spec, parse_spec

    try:
        if args.spec == "-":
            spec = parse_spec(sys.stdin.read(), source="<stdin>")
        else:
            spec = load_spec(args.spec)
    except SpecError as exc:
        raise SystemExit(f"avfi spec validate: {exc}")
    # Count over the *expanded* grid so compound generator entries report
    # the injectors/faults the campaign will actually run.
    expanded = spec.expanded_injectors()
    n_faults = sum(len(faults) for faults in expanded.values())
    print(
        f"OK: {spec.name!r} (hash {spec.hash()}) — "
        f"{len(expanded)} injector(s), {n_faults} fault(s), "
        f"agent {spec.agent.name!r}"
    )


def cmd_spec_expand(args) -> None:
    from .core.spec import SpecError, load_spec, parse_spec
    from .sim.scenario import town_config_to_dict

    try:
        if args.spec == "-":
            spec = parse_spec(sys.stdin.read(), source="<stdin>")
        else:
            spec = load_spec(args.spec)
        scenarios = spec.scenarios.build()
    except SpecError as exc:
        raise SystemExit(f"avfi spec expand: {exc}")
    if args.json:
        print(json.dumps([s.to_dict() for s in scenarios], indent=2))
        return
    print(f"{spec.name!r} (hash {spec.hash()}) expands to {len(scenarios)} scenario(s):")
    for s in scenarios:
        town = town_config_to_dict(s.town_config)
        kind = town.get("kind", "grid")
        town_desc = f"{kind} {town['rows']}x{town['cols']}"
        if kind == "procedural":
            town_desc += f" seed={town['seed']}"
        line = (
            f"  {s.name}: mission {s.mission.name!r} "
            f"({s.mission.straight_line_distance():.0f} m crow-flies, "
            f"limit {s.mission.time_limit_s:.0f} s), town {town_desc}, "
            f"{s.weather}, {s.n_npc_vehicles} npc / {s.n_pedestrians} ped, "
            f"seed {s.seed}"
        )
        print(line)
        for npc in s.npcs:
            behavior = "none"
            if npc.behavior is not None:
                behavior = npc.behavior.name
                if npc.behavior.turn is not None:
                    behavior += f" ({npc.behavior.turn})"
            print(
                f"    npc: road {npc.road_id} dir {npc.direction:+d} "
                f"station {npc.station:.1f} m, {npc.target_speed:.1f} m/s, "
                f"behavior {behavior}"
            )


def cmd_report(args) -> None:
    from pathlib import Path

    from .core import (
        compare_to_baseline,
        format_table,
        interaction_effects,
        interaction_table,
    )
    from .core.metrics import MetricsAccumulator
    from .core.outcomes import EpisodeFailure
    from .core.reporting import quarantine_table
    from .core.sink import ParquetUnavailable, iter_records

    path = Path(args.checkpoint)
    if not path.exists():
        _fail("report", f"no such results file: {path}")
    fmt = "parquet" if args.parquet else "auto"
    # One streaming pass: records fold into per-injector accumulators as
    # they come off disk, so a million-episode file never loads at once.
    # Failure rows count toward the accumulators' failure_counts and
    # collect for the quarantine table (they are few by construction —
    # each is a grid cell that burned its whole retry budget).
    groups: dict[str, MetricsAccumulator] = {}
    n_records = 0
    failures: list[EpisodeFailure] = []
    try:
        for record in iter_records(path, fmt=fmt):
            groups.setdefault(record.injector, MetricsAccumulator()).add(record)
            if isinstance(record, EpisodeFailure):
                failures.append(record)
            else:
                n_records += 1
    except ParquetUnavailable as exc:
        raise SystemExit(f"avfi report: {exc}")
    except ValueError as exc:
        raise SystemExit(f"avfi report: {exc}")
    if not groups:
        raise SystemExit(f"avfi report: no records in {path}")
    metrics = {name: acc.result() for name, acc in groups.items()}

    print(
        f"{n_records} record(s), {len(failures)} failure(s), "
        f"{len(metrics)} injector(s) from {path}"
    )
    print()
    rows = [
        [
            name,
            m.n_runs,
            m.n_failures or None,
            m.msr,
            m.vpk,
            m.apk,
            m.ttv_median_s if m.ttv_s else None,
            "+".join(m.fault_names) if m.fault_names else "-",
        ]
        for name, m in metrics.items()
    ]
    print(
        format_table(
            ["injector", "runs", "lost", "MSR_%", "VPK", "APK", "TTV_s", "faults"],
            rows,
        )
    )

    if args.baseline in metrics:
        effects = compare_to_baseline(
            {name: m.vpk_per_run for name, m in metrics.items()},
            baseline=args.baseline,
        )
        if effects:
            print()
            print(
                format_table(
                    ["injector", "VPK_median_shift", "mean_ratio", "p_value"],
                    [
                        [name, e["median_shift"], e["mean_ratio_vs_baseline"], e["p_value"]]
                        for name, e in effects.items()
                    ],
                    title=f"effect vs baseline {args.baseline!r} (per-run VPK)",
                )
            )
    else:
        print(f"\n(baseline {args.baseline!r} not in records; effects skipped)")

    print()
    print(
        interaction_table(
            interaction_effects(metrics, baseline=args.baseline),
            title="compound-fault interaction effects (vs worst single-fault marginal)",
        )
    )

    if failures:
        print()
        print(quarantine_table(failures))


def cmd_demo(args) -> None:
    from .agent import autopilot_agent_factory
    from .core import format_table, metrics_by_injector, run_episode, standard_scenarios
    from .core.faults import OutputDelay, SolidOcclusion
    from .sim.builders import SimulationBuilder

    scenario = standard_scenarios(1, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2)[0]
    builder = SimulationBuilder()
    records = []
    for name, faults in {
        "none": [],
        "faulted": [SolidOcclusion(size_frac=0.4), OutputDelay(20)],
    }.items():
        record = run_episode(
            builder, scenario, autopilot_agent_factory(), faults=faults,
            injector_name=name,
        )
        print(
            f"{name:>8}: success={record.success} "
            f"distance={record.distance_km * 1000:.0f} m "
            f"violations={record.n_violations}"
        )
        records.append(record)
    rows = [
        [n, m.msr, m.vpk, m.apk]
        for n, m in metrics_by_injector(records).items()
    ]
    print(format_table(["injector", "MSR_%", "VPK", "APK"], rows))


def cmd_campaign(args) -> None:
    _run_spec(_campaign_spec_from_args(args), save=args.save)


def cmd_sweep_delay(args) -> None:
    _run_spec(_sweep_delay_spec_from_args(args), save=args.save)


def cmd_train(args) -> None:
    from .agent import CollectionConfig, TrainConfig, collect_imitation_data, train_ilcnn
    from .core import standard_scenarios
    from .sim.builders import SimulationBuilder

    scenarios = standard_scenarios(
        args.scenarios, seed=args.data_seed, n_npc_vehicles=2, n_pedestrians=2
    )
    dataset = collect_imitation_data(
        scenarios, builder=SimulationBuilder(), config=CollectionConfig(seed=0)
    )
    print(f"collected {len(dataset)} frames: {dataset.command_histogram()}")
    model, history = train_ilcnn(dataset, config=TrainConfig(epochs=args.epochs))
    model.save(args.out)
    print(
        f"trained in {history.wall_time_s:.0f}s, "
        f"best val loss {history.best_val():.5f} -> {args.out}"
    )


def cmd_worker(args) -> None:
    from .core.queue import run_worker

    drained = run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_s=args.lease,
        poll_s=args.poll,
        idle_timeout=args.idle_timeout,
        max_tasks=args.max_tasks,
        verbose=True,
        episodes_per_slot=args.episodes_per_slot,
    )
    if args.max_tasks is not None and drained >= args.max_tasks:
        print(f"reached --max-tasks; this worker completed {drained} episode(s)")
    else:
        print(f"queue idle; this worker completed {drained} episode(s)")


def cmd_queue_status(args) -> None:
    import time
    from pathlib import Path

    from .core.netqueue import is_broker_url, make_broker

    if not is_broker_url(args.queue_dir) and not Path(args.queue_dir).is_dir():
        _fail("queue-status", f"no such queue directory: {args.queue_dir}")
    broker = make_broker(args.queue_dir)
    manifest = broker.manifest() or {}
    status = broker.status()
    print(f"queue: {args.queue_dir}")
    if manifest:
        created = manifest.get("created_at")
        age = f", published {time.time() - created:.0f}s ago" if created else ""
        print(
            f"campaign: {manifest.get('n_tasks', '?')} task(s) from "
            f"{manifest.get('coordinator', '?')}{age}"
        )
    else:
        print("campaign: none published yet")
    for key in ("pending", "claimed", "failed", "quarantined", "results"):
        print(f"  {key:>12}: {status[key]}")
    done = status["results"] + status["quarantined"]
    n_tasks = manifest.get("n_tasks")
    if isinstance(n_tasks, int) and n_tasks > 0:
        print(f"  {'progress':>12}: {done}/{n_tasks} episode(s) settled")
    stale_after = args.stale_after
    if stale_after is None:
        stale_after = float(manifest.get("lease_s") or 60.0)
    # Heartbeat rows come from the broker (local directory or TCP); the
    # broker already judged each age with its skew guard (fresher of the
    # embedded timestamp and the file's mtime, on the *server's* clock).
    rows = broker.workers()
    print(f"workers: {len(rows)} seen")
    for beat in rows:
        age = beat.get("age_s")
        if age is None:
            print(f"  {beat.get('worker', '?')}: unreadable heartbeat file")
            continue
        live = "live" if age <= stale_after else f"STALE (>{stale_after:.0f}s)"
        print(
            f"  {beat.get('worker', '?')}: {live}, last beat "
            f"{age:.0f}s ago, {beat.get('episodes_done', 0)} episode(s) done "
            f"on {beat.get('host', '?')}"
        )


def cmd_serve(args) -> None:
    import json
    from pathlib import Path

    from .core.service import CampaignService

    service = CampaignService(
        args.state_dir,
        host=args.host,
        port=args.port,
        broker_port=args.broker_port,
        lease_s=args.lease,
        default_workers=args.local_workers,
        stall_timeout=args.stall_timeout,
    )
    service.start()
    print(f"control plane: {service.url}")
    print(f"task broker:   {service.broker_address}")
    print(f"attach workers with: avfi worker --queue-dir {service.broker_address}")
    if args.ready_file:
        # Scripts (CI, examples) wait for this file instead of parsing
        # stdout: it appears only once both listeners are bound.
        Path(args.ready_file).write_text(
            json.dumps({"url": service.url, "broker": service.broker_address}) + "\n"
        )
    try:
        service.wait()
        print("shutdown requested; finishing up")
    except KeyboardInterrupt:
        print("\ninterrupted; shutting down")
    finally:
        service.stop()


def cmd_submit(args) -> None:
    import json
    import time
    import urllib.error
    import urllib.request
    from pathlib import Path

    from .core.spec import SpecError, load_spec

    if not Path(args.spec).exists():
        _fail("submit", f"no such spec file: {args.spec}")
    try:
        spec = load_spec(args.spec)  # validate locally: fail before the network
    except SpecError as exc:
        raise SystemExit(f"avfi submit: {exc}")
    body: dict = {"spec": spec.to_dict()}
    if args.workers is not None:
        body["workers"] = args.workers
    tolerance = _fault_tolerance_from_args(args, spec)
    if tolerance is not None:
        body["fault_tolerance"] = tolerance.to_dict()
    url = args.url.rstrip("/")

    def call(method: str, path: str, payload: bytes | None = None):
        request = urllib.request.Request(url + path, data=payload, method=method)
        if payload is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise SystemExit(f"avfi submit: {url}{path} -> {exc.code}: {detail}")
        except urllib.error.URLError as exc:
            raise SystemExit(f"avfi submit: cannot reach {url}: {exc.reason}")

    summary = call("POST", "/campaigns", json.dumps(body).encode())
    sub_id = summary["id"]
    print(f"submitted {spec.name} as {sub_id} ({summary['state']})")
    if not args.wait:
        print(f"poll with: curl {url}/campaigns/{sub_id}")
        return

    last_line = ""
    while True:
        summary = call("GET", f"/campaigns/{sub_id}")
        counts = summary.get("counts") or {}
        line = f"{summary['state']}: " + ", ".join(
            f"{key}={counts[key]}" for key in sorted(counts)
        )
        if line != last_line:
            print(f"[{sub_id}] {line}")
            last_line = line
        if summary["state"] in ("done", "failed"):
            break
        time.sleep(args.poll)
    if summary["state"] == "failed":
        raise SystemExit(f"avfi submit: campaign failed: {summary.get('error', '?')}")

    with urllib.request.urlopen(
        url + f"/campaigns/{sub_id}/results", timeout=30
    ) as response:
        results = response.read()
    if args.save:
        Path(args.save).write_bytes(results)
        print(f"results -> {args.save}")
    from .core import format_table, metrics_by_injector
    from .core.campaign import RunRecord

    records = []
    for line in results.decode().splitlines():
        row = json.loads(line)
        if "outcome" not in row:
            records.append(RunRecord(**row))
    metrics = metrics_by_injector(records)
    rows = [
        [n, m.n_runs, m.msr, m.vpk, m.apk, m.ttv_median_s if m.ttv_s else None]
        for n, m in metrics.items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK", "TTV_s"], rows))


#: Hook points in fig. 1 order, with the seam each one corrupts.
_HOOK_TITLES = (
    ("input", "sensor bundle before the agent sees it (Input FI)"),
    ("output", "control command after the agent produced it (Output FI)"),
    ("timing", "packet delivery on the component channels (Timing FI)"),
    ("model", "neural-network weights and activations (NN FI)"),
    ("world", "world measurements and global state"),
)


def cmd_list_faults(args) -> None:
    from .core.faults import FAULT_REGISTRY, REQUIRED, fault_parameters

    by_hook: dict[str, list] = {}
    for name, cls in sorted(FAULT_REGISTRY.items()):
        by_hook.setdefault(cls.hook, []).append((name, cls))
    print(f"{len(FAULT_REGISTRY)} registered fault models (use these names in")
    print('campaign specs: {"fault": "<name>", "params": {...}, "trigger": {...}}):')
    for hook, title in _HOOK_TITLES:
        entries = by_hook.pop(hook, [])
        if not entries:
            continue
        print(f"\n{hook} — {title}:")
        for name, cls in entries:
            params = ", ".join(
                f"{pname}" if default is REQUIRED else f"{pname}={default!r}"
                for pname, default in fault_parameters(cls).items()
            )
            print(f"  {name:16} {cls.__name__:22} {params or '(no parameters)'}")
    for hook, entries in sorted(by_hook.items()):  # user-registered hooks
        print(f"\n{hook}:")
        for name, cls in entries:
            print(f"  {name:16} {cls.__name__}")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avfi", description="AVFI: fault injection for autonomous vehicles"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "run", help="execute a declarative campaign spec (JSON file)"
    )
    p.add_argument("spec", help="path to a campaign spec (see `avfi spec emit`)")
    _add_exec_args(p, workers_default=None)
    p.add_argument(
        "--checkpoint",
        default=None,
        help="resumable JSONL checkpoint (overrides the spec's "
        "execution.checkpoint)",
    )
    p.add_argument(
        "--parquet",
        default=None,
        metavar="PATH",
        help="also stream records into a parquet analytics sink beside "
        "the JSONL checkpoint (needs the optional pyarrow dependency; "
        "degrades to JSONL-only with a warning; overrides the spec's "
        "execution.parquet)",
    )
    p.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help="retry each episode up to this many times before giving up "
        "(overrides the spec's fault_tolerance.max_attempts; default 1 = "
        "no retries)",
    )
    p.add_argument(
        "--episode-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-episode wall-clock budget; a hung episode is killed and "
        "counts as a failed attempt (overrides "
        "fault_tolerance.timeout_s; default: no timeout)",
    )
    p.add_argument(
        "--failure-budget",
        type=_non_negative_int,
        default=None,
        help="quarantine up to this many persistently failing episodes and "
        "keep going; one more aborts the campaign (overrides "
        "fault_tolerance.failure_budget; default 0 = abort on first "
        "persistent failure)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "report",
        help="streaming metrics report over a results checkpoint "
        "(JSONL or parquet)",
    )
    p.add_argument(
        "checkpoint",
        help="results file: a JSONL checkpoint or a parquet sink "
        "(format from the .parquet suffix unless --parquet)",
    )
    p.add_argument(
        "--parquet",
        action="store_true",
        help="force the parquet reader regardless of file suffix",
    )
    p.add_argument(
        "--baseline",
        default="none",
        help="injector name treated as the fault-free baseline "
        "(default: 'none')",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("spec", help="emit / validate / expand campaign specs")
    spec_sub = p.add_subparsers(dest="spec_command", required=True)
    p_emit = spec_sub.add_parser(
        "emit",
        help="print the spec a built-in command would run "
        "(edit, archive, `avfi run` it)",
    )
    emit_sub = p_emit.add_subparsers(dest="what", required=True)
    pe = emit_sub.add_parser("campaign", help="the input-fault campaign spec")
    _add_suite_args(pe)
    pe.add_argument(
        "--injectors",
        nargs="+",
        default=["gaussian", "s&p", "solid-occ", "transp-occ", "water-drop"],
        help="input fault names (see list-faults)",
    )
    _add_exec_args(pe, with_save=False)
    pe.add_argument("--out", default=None, help="write the spec here instead of stdout")
    pe.set_defaults(func=cmd_spec_emit, what="campaign")
    ps = emit_sub.add_parser("sweep-delay", help="the output-delay sweep spec")
    _add_suite_args(ps)
    ps.add_argument("--delays", type=int, nargs="+", default=[0, 5, 10, 20, 30])
    ps.add_argument("--mode", choices=("replay", "drop"), default="replay")
    _add_exec_args(ps, with_save=False)
    ps.add_argument("--out", default=None, help="write the spec here instead of stdout")
    ps.set_defaults(func=cmd_spec_emit, what="sweep-delay")
    p_val = spec_sub.add_parser("validate", help="load a spec and report its hash")
    p_val.add_argument("spec", help="spec file path, or '-' for stdin")
    p_val.set_defaults(func=cmd_spec_validate)
    p_exp = spec_sub.add_parser(
        "expand",
        help="print the concrete scenario suite a spec builds, without running it",
    )
    p_exp.add_argument("spec", help="spec file path, or '-' for stdin")
    p_exp.add_argument(
        "--json",
        action="store_true",
        help="emit the expanded suite as a JSON scenario array",
    )
    p_exp.set_defaults(func=cmd_spec_expand)

    p = sub.add_parser("demo", help="two quick episodes: clean vs. faulted")
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("campaign", help="input-fault campaign (figs. 2-3)")
    _add_common_campaign_args(p)
    p.add_argument(
        "--injectors",
        nargs="+",
        default=["gaussian", "s&p", "solid-occ", "transp-occ", "water-drop"],
        help="input fault names (see list-faults)",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("sweep-delay", help="output-delay sweep (fig. 4)")
    _add_common_campaign_args(p)
    p.add_argument("--delays", type=int, nargs="+", default=[0, 5, 10, 20, 30])
    p.add_argument("--mode", choices=("replay", "drop"), default="replay")
    p.set_defaults(func=cmd_sweep_delay)

    p = sub.add_parser(
        "worker",
        help="attach this machine to a queue campaign and drain tasks until idle",
    )
    p.add_argument(
        "--queue-dir", required=True,
        help="the campaign's shared broker directory (same path/NFS mount "
        "the coordinator passed to --queue-dir), or a broker URL "
        "(tcp://host:port — what `avfi serve` prints)",
    )
    p.add_argument("--worker-id", default=None, help="default: <hostname>-<pid>")
    p.add_argument(
        "--lease", type=_positive_float, default=60.0,
        help="task lease in seconds (heartbeats refresh it; keep it well "
        "above clock skew between machines)",
    )
    p.add_argument("--poll", type=_positive_float, default=0.5, help="queue poll interval (s)")
    p.add_argument(
        "--idle-timeout", type=_positive_float, default=5.0,
        help="exit after the queue has been idle this long (s)",
    )
    p.add_argument(
        "--max-tasks", type=_positive_int, default=None,
        help="detach after completing this many episodes",
    )
    p.add_argument(
        "--episodes-per-slot", type=_positive_int, default=None, metavar="E",
        help="drain this many claimed episodes at once through one "
        "multiplexed slot (default: the published campaign's "
        "episodes_per_slot; output stays byte-identical)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the campaign service: a task broker plus an HTTP "
        "control plane for submitting and watching campaigns",
    )
    p.add_argument(
        "--state-dir", required=True,
        help="durable service state (the broker root lives at "
        "<state-dir>/queue and survives restarts)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for both listeners; the service is "
        "unauthenticated — bind to localhost or a trusted network only",
    )
    p.add_argument("--port", type=int, default=8265, help="HTTP control-plane port (0 = ephemeral)")
    p.add_argument("--broker-port", type=int, default=0, help="task broker port (0 = ephemeral)")
    p.add_argument(
        "--lease", type=_positive_float, default=60.0,
        help="default task lease for submitted campaigns (s)",
    )
    p.add_argument(
        "--local-workers", type=_int_at_least(0), default=0, metavar="N",
        help="fork N drain workers per campaign on this machine "
        "(default 0: coordinate only, workers attach over TCP)",
    )
    p.add_argument(
        "--stall-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="fail a campaign when no episode completes and no worker "
        "holds a lease for this long (default: wait forever)",
    )
    p.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write a JSON line with the bound URLs once both listeners "
        "are up (script/CI coordination)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a campaign spec to a running `avfi serve` instance",
    )
    p.add_argument("spec", help="path to a campaign spec JSON file")
    p.add_argument(
        "--url", default="http://127.0.0.1:8265",
        help="the service's control-plane URL",
    )
    p.add_argument(
        "--workers", type=_int_at_least(0), default=None,
        help="ask the service to fork this many local drain workers "
        "for this campaign (default: the service's --local-workers)",
    )
    p.add_argument(
        "--max-attempts", type=_positive_int, default=None,
        help="per-episode attempts before the episode is parked",
    )
    p.add_argument(
        "--episode-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit",
    )
    p.add_argument(
        "--failure-budget", type=_int_at_least(0), default=None, metavar="N",
        help="quarantine up to N failed episodes before aborting",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="poll until the campaign settles, then print the metrics table",
    )
    p.add_argument(
        "--poll", type=_positive_float, default=1.0,
        help="poll interval while --wait'ing (s)",
    )
    p.add_argument(
        "--save", default=None, metavar="PATH",
        help="with --wait: write the result rows (JSONL) here",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "queue-status",
        help="one-shot health report for a queue campaign directory",
    )
    p.add_argument(
        "queue_dir",
        help="the campaign's shared broker directory (the coordinator's "
        "--queue-dir), or a broker URL (tcp://host:port)",
    )
    p.add_argument(
        "--stale-after", type=_positive_float, default=None, metavar="SECONDS",
        help="flag workers whose last heartbeat is older than this "
        "(default: the campaign's lease_s)",
    )
    p.set_defaults(func=cmd_queue_status)

    p = sub.add_parser("train", help="train the IL-CNN agent")
    p.add_argument("--out", default="ilcnn_trained.npz")
    p.add_argument("--scenarios", type=int, default=16)
    p.add_argument("--epochs", type=int, default=12)
    p.add_argument("--data-seed", type=int, default=100)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("list-faults", help="show all registered fault models")
    p.set_defaults(func=cmd_list_faults)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Cross-argument check argparse types can't express: 0 workers means
    # "coordinate only", which only the queue backend can do.  Applies
    # to the commands that execute straight from flags; `run` checks it
    # itself after merging the spec's execution options (the queue dir
    # may come from the spec), and `spec emit` runs nothing — emitting a
    # coordinate-only spec to pair with a later --queue-dir is fine.
    if getattr(args, "command", None) in ("campaign", "sweep-delay"):
        _require_queue_for_coordinate_only(
            parser.error, getattr(args, "workers", None), getattr(args, "queue_dir", None)
        )
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
