"""Command-line front end: ``avfi`` (or ``python -m repro``).

Subcommands:

* ``demo`` — one fault-free and one faulted episode with the autopilot
  (fast; no training);
* ``campaign`` — a named-injector campaign against the IL-CNN or autopilot;
* ``sweep-delay`` — the fig. 4 output-delay sweep;
* ``worker`` — attach this machine to a distributed queue campaign
  (``--queue-dir``) and drain tasks until the queue is idle;
* ``train`` — collect demonstrations and train the IL-CNN;
* ``list-faults`` — the registered input fault models.
"""

from __future__ import annotations

import argparse
import sys


def _int_at_least(minimum: int):
    """argparse type factory: a bounded integer rejected with a readable
    message (``--workers 0`` used to reach the executor and die with an
    opaque traceback)."""

    def parse(value: str) -> int:
        try:
            number = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
        if number < minimum:
            raise argparse.ArgumentTypeError(f"must be >= {minimum}, got {value}")
        return number

    return parse


_positive_int = _int_at_least(1)
#: ``--workers 0`` = coordinate only; :func:`main` additionally requires
#: ``--queue-dir`` for it.
_non_negative_int = _int_at_least(0)


def _positive_float(value: str) -> float:
    """argparse type: a finite float > 0 (leases, poll intervals...)."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if not number > 0 or number != number or number == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return number


def _add_common_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runs", type=_positive_int, default=4, help="missions per injector")
    parser.add_argument("--agent", choices=("nn", "autopilot"), default="autopilot")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--npc-vehicles", type=int, default=2)
    parser.add_argument("--pedestrians", type=int, default=2)
    parser.add_argument("--save", default=None, help="write records JSON here")
    parser.add_argument(
        "--workers",
        type=_non_negative_int,
        default=1,
        help="worker processes for episode execution (1 = serial; with "
        "--queue-dir: local drain workers spawned next to the coordinator, "
        "0 = coordinate only and wait for `avfi worker` machines to attach)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help="run through the distributed work queue rooted at this shared "
        "directory; other machines join with `avfi worker --queue-dir DIR`",
    )
    parser.add_argument(
        "--lease",
        type=_positive_float,
        default=60.0,
        help="queue task lease in seconds — a worker silent for this long "
        "loses its task back to the queue (only with --queue-dir)",
    )


def _agent_factory(kind: str):
    from .agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory

    if kind == "nn":
        return nn_agent_factory(get_or_train_default_model())
    return autopilot_agent_factory()


def _run_campaign(args, injectors) -> None:
    from .core import Campaign, format_table, metrics_by_injector, standard_scenarios
    from .sim.builders import SimulationBuilder

    scenarios = standard_scenarios(
        args.runs,
        seed=args.seed,
        n_npc_vehicles=args.npc_vehicles,
        n_pedestrians=args.pedestrians,
    )
    if args.queue_dir and args.workers == 0:
        print(
            f"coordinating only: attach workers with\n"
            f"  python -m repro worker --queue-dir {args.queue_dir}"
        )
    campaign = Campaign(
        scenarios, _agent_factory(args.agent), injectors,
        builder=SimulationBuilder(), verbose=True, workers=args.workers,
        backend="queue" if args.queue_dir else None,
        queue_dir=args.queue_dir, lease_s=args.lease if args.queue_dir else None,
    )
    result = campaign.run()
    if args.save:
        result.save(args.save)
        print(f"records -> {args.save}")
    metrics = metrics_by_injector(result.records)
    rows = [
        [n, m.n_runs, m.msr, m.vpk, m.apk, m.ttv_median_s if m.ttv_s else None]
        for n, m in metrics.items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK", "TTV_s"], rows))


def cmd_demo(args) -> None:
    from .agent import autopilot_agent_factory
    from .core import format_table, metrics_by_injector, run_episode, standard_scenarios
    from .core.faults import OutputDelay, SolidOcclusion
    from .sim.builders import SimulationBuilder

    scenario = standard_scenarios(1, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2)[0]
    builder = SimulationBuilder()
    records = []
    for name, faults in {
        "none": [],
        "faulted": [SolidOcclusion(size_frac=0.4), OutputDelay(20)],
    }.items():
        record = run_episode(
            builder, scenario, autopilot_agent_factory(), faults=faults,
            injector_name=name,
        )
        print(
            f"{name:>8}: success={record.success} "
            f"distance={record.distance_km * 1000:.0f} m "
            f"violations={record.n_violations}"
        )
        records.append(record)
    rows = [
        [n, m.msr, m.vpk, m.apk]
        for n, m in metrics_by_injector(records).items()
    ]
    print(format_table(["injector", "MSR_%", "VPK", "APK"], rows))


def cmd_campaign(args) -> None:
    from .core.faults import make_input_fault

    injectors: dict[str, list] = {"none": []}
    for name in args.injectors:
        injectors[name] = [make_input_fault(name)]
    _run_campaign(args, injectors)


def cmd_sweep_delay(args) -> None:
    from .core.faults import OutputDelay

    injectors = {
        f"delay-{k}": ([OutputDelay(k, mode=args.mode)] if k else [])
        for k in args.delays
    }
    _run_campaign(args, injectors)


def cmd_train(args) -> None:
    from .agent import CollectionConfig, TrainConfig, collect_imitation_data, train_ilcnn
    from .core import standard_scenarios
    from .sim.builders import SimulationBuilder

    scenarios = standard_scenarios(
        args.scenarios, seed=args.data_seed, n_npc_vehicles=2, n_pedestrians=2
    )
    dataset = collect_imitation_data(
        scenarios, builder=SimulationBuilder(), config=CollectionConfig(seed=0)
    )
    print(f"collected {len(dataset)} frames: {dataset.command_histogram()}")
    model, history = train_ilcnn(dataset, config=TrainConfig(epochs=args.epochs))
    model.save(args.out)
    print(
        f"trained in {history.wall_time_s:.0f}s, "
        f"best val loss {history.best_val():.5f} -> {args.out}"
    )


def cmd_worker(args) -> None:
    from .core.queue import run_worker

    drained = run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_s=args.lease,
        poll_s=args.poll,
        idle_timeout=args.idle_timeout,
        max_tasks=args.max_tasks,
        verbose=True,
    )
    if args.max_tasks is not None and drained >= args.max_tasks:
        print(f"reached --max-tasks; this worker completed {drained} episode(s)")
    else:
        print(f"queue idle; this worker completed {drained} episode(s)")


def cmd_list_faults(args) -> None:
    from .core.faults import INPUT_FAULT_REGISTRY

    print("input fault injectors (paper figs. 2-3):")
    for name, cls in sorted(INPUT_FAULT_REGISTRY.items()):
        print(f"  {name:12} {cls.__name__}")
    print(
        "other classes: hardware (ControlBitFlip, ControlStuckAt, SensorBitFlip,\n"
        "  PacketBitFlip), timing (OutputDelay, SensorDelay, PacketLoss,\n"
        "  PacketReorder), ML (WeightNoise, WeightBitFlip, ActivationFault),\n"
        "  world (WeatherShiftFault)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avfi", description="AVFI: fault injection for autonomous vehicles"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="two quick episodes: clean vs. faulted")
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("campaign", help="input-fault campaign (figs. 2-3)")
    _add_common_campaign_args(p)
    p.add_argument(
        "--injectors",
        nargs="+",
        default=["gaussian", "s&p", "solid-occ", "transp-occ", "water-drop"],
        help="input fault names (see list-faults)",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("sweep-delay", help="output-delay sweep (fig. 4)")
    _add_common_campaign_args(p)
    p.add_argument("--delays", type=int, nargs="+", default=[0, 5, 10, 20, 30])
    p.add_argument("--mode", choices=("replay", "drop"), default="replay")
    p.set_defaults(func=cmd_sweep_delay)

    p = sub.add_parser(
        "worker",
        help="attach this machine to a queue campaign and drain tasks until idle",
    )
    p.add_argument(
        "--queue-dir", required=True,
        help="the campaign's shared broker directory (same path/NFS mount "
        "the coordinator passed to --queue-dir)",
    )
    p.add_argument("--worker-id", default=None, help="default: <hostname>-<pid>")
    p.add_argument(
        "--lease", type=_positive_float, default=60.0,
        help="task lease in seconds (heartbeats refresh it; keep it well "
        "above clock skew between machines)",
    )
    p.add_argument("--poll", type=_positive_float, default=0.5, help="queue poll interval (s)")
    p.add_argument(
        "--idle-timeout", type=_positive_float, default=5.0,
        help="exit after the queue has been idle this long (s)",
    )
    p.add_argument(
        "--max-tasks", type=_positive_int, default=None,
        help="detach after completing this many episodes",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("train", help="train the IL-CNN agent")
    p.add_argument("--out", default="ilcnn_trained.npz")
    p.add_argument("--scenarios", type=int, default=16)
    p.add_argument("--epochs", type=int, default=12)
    p.add_argument("--data-seed", type=int, default=100)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("list-faults", help="show registered fault models")
    p.set_defaults(func=cmd_list_faults)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Cross-argument check argparse types can't express: 0 workers means
    # "coordinate only", which only the queue backend can do.
    if getattr(args, "workers", None) == 0 and not getattr(args, "queue_dir", None):
        parser.error("--workers 0 (coordinate only) requires --queue-dir")
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
