"""Route planning over the town's lane graph.

The conditional imitation-learning controller needs two things from a
planner (fig. 1's "Route Planning" box): a geometric path to follow and a
stream of high-level *commands* — FOLLOW, LEFT, RIGHT, STRAIGHT — that
select the network branch as junctions approach.

:class:`RoutePlanner` runs A* over intersections connected by directed
lanes, stitches lane centrelines with smooth junction connector curves into
one :class:`Route` polyline, and labels every point with the command in
force there (turn commands activate ``COMMAND_HORIZON`` metres before the
junction, as in the CARLA benchmark).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..sim.geometry import Polyline, Vec2
from ..sim.town import Lane, Town

__all__ = ["Command", "Route", "RoutePlanner", "PlanningError", "COMMAND_HORIZON"]

#: Metres before a junction at which its turn command becomes active.
COMMAND_HORIZON = 14.0


class Command(IntEnum):
    """High-level navigation commands, one per network branch."""

    FOLLOW = 0
    LEFT = 1
    RIGHT = 2
    STRAIGHT = 3


class PlanningError(RuntimeError):
    """Raised when no route exists between the requested endpoints."""


@dataclass
class Route:
    """A planned path with per-station command labels.

    ``polyline`` runs start→goal; ``commands`` holds one :class:`Command`
    per polyline vertex (same indexing as ``polyline.points``).
    """

    polyline: Polyline
    commands: list[Command]

    def __post_init__(self) -> None:
        if len(self.commands) != len(self.polyline.points):
            raise ValueError("one command per route vertex required")
        self._stations = np.concatenate(
            [
                [0.0],
                np.cumsum(
                    [
                        a.distance_to(b)
                        for a, b in zip(self.polyline.points, self.polyline.points[1:])
                    ]
                ),
            ]
        )

    @property
    def length(self) -> float:
        """Total route length, metres."""
        return self.polyline.length

    def locate(self, position: Vec2) -> tuple[float, float]:
        """``(station, lateral)`` of ``position`` w.r.t. the route."""
        return self.polyline.locate(position)

    def command_at(self, position: Vec2) -> Command:
        """The command in force at the route point nearest ``position``."""
        station, _ = self.polyline.locate(position)
        idx = int(np.searchsorted(self._stations, station, side="right") - 1)
        idx = min(max(idx, 0), len(self.commands) - 1)
        return self.commands[idx]

    def target_point(self, position: Vec2, lookahead: float) -> Vec2:
        """Pure-pursuit target: the route point ``lookahead`` m ahead."""
        station, _ = self.polyline.locate(position)
        return self.polyline.point_at(station + lookahead)

    def distance_remaining(self, position: Vec2) -> float:
        """Route distance left from ``position`` to the goal."""
        station, _ = self.polyline.locate(position)
        return max(0.0, self.length - station)

    def cross_track_error(self, position: Vec2) -> float:
        """Signed lateral offset from the route (positive = left of it)."""
        _, lateral = self.polyline.locate(position)
        return lateral

    def off_route(self, position: Vec2, tolerance: float = 8.0) -> bool:
        """Whether ``position`` has strayed more than ``tolerance`` metres."""
        return abs(self.cross_track_error(position)) > tolerance


class RoutePlanner:
    """Plans :class:`Route` objects on one town.

    The search runs over the *lane graph* (states are lanes, transitions
    are junction connectors) rather than over intersections, so it can
    exclude U-turn transitions — a 180° flip inside a junction is tighter
    than the bicycle model's minimum turning radius and a real planner
    would never emit one.  ``TURN_PENALTY`` metres are added per junction
    crossing so straighter routes win ties.
    """

    TURN_PENALTY = 4.0

    def __init__(self, town: Town):
        self.town = town
        # lane -> outgoing lanes at its end intersection; the town owns the
        # successor topology (U-turns excluded, see Town.lane_successors).
        self._successors: dict[tuple[int, int], list[Lane]] = {
            tuple(lane.ref): town.lane_successors(lane) for lane in town.lanes.values()
        }

    # ------------------------------------------------------------------
    _GOAL = ("GOAL", 0)  # virtual terminal node of the lane-graph search

    def _astar(self, start_lane: Lane, start_station: float, goal_lane: Lane, goal_station: float) -> list[Lane]:
        """Cheapest lane sequence from ``start_lane`` to ``goal_lane``.

        Includes both endpoint lanes.  The goal is a *virtual* node entered
        by transitioning onto ``goal_lane`` and driving to ``goal_station``;
        this both prices the final partial traversal correctly and handles
        ``goal_lane == start_lane`` with the goal behind the vehicle (the
        route loops around a block and re-enters the lane).
        """
        goal_ref = tuple(goal_lane.ref)
        goal_pos = goal_lane.centerline.point_at(goal_station)

        def heuristic(lane: Lane) -> float:
            end = lane.centerline.point_at(lane.length)
            return end.distance_to(goal_pos)

        start_ref = tuple(start_lane.ref)
        start_cost = start_lane.length - start_station
        counter = 0
        frontier: list[tuple[float, int, tuple]] = [
            (start_cost + heuristic(start_lane), counter, start_ref)
        ]
        g_score: dict[tuple, float] = {start_ref: start_cost}
        came_from: dict[tuple, tuple] = {}
        while frontier:
            _, _, ref = heapq.heappop(frontier)
            if ref == self._GOAL:
                return self._reconstruct(came_from, start_ref, goal_lane)
            for succ in self._successors[ref]:
                succ_ref = tuple(succ.ref)
                if succ_ref == goal_ref:
                    tentative = g_score[ref] + self.TURN_PENALTY + goal_station
                    if tentative < g_score.get(self._GOAL, math.inf):
                        g_score[self._GOAL] = tentative
                        came_from[self._GOAL] = ref
                        counter += 1
                        heapq.heappush(frontier, (tentative, counter, self._GOAL))
                    continue
                tentative = g_score[ref] + succ.length + self.TURN_PENALTY
                if tentative < g_score.get(succ_ref, math.inf):
                    g_score[succ_ref] = tentative
                    came_from[succ_ref] = ref
                    counter += 1
                    heapq.heappush(
                        frontier, (tentative + heuristic(succ), counter, succ_ref)
                    )
        raise PlanningError(
            f"no route from lane {start_lane.ref} to lane {goal_lane.ref}"
        )

    def _reconstruct(
        self,
        came_from: dict[tuple, tuple],
        start_ref: tuple,
        goal_lane: Lane,
    ) -> list[Lane]:
        from ..sim.town import LaneRef  # local import; avoids module cycle at load

        refs = [came_from[self._GOAL]]
        while refs[-1] != start_ref:
            refs.append(came_from[refs[-1]])
        refs.reverse()
        return [self.town.lanes[LaneRef(*r)] for r in refs] + [goal_lane]

    # ------------------------------------------------------------------
    def plan(self, start: Vec2, goal: Vec2, start_yaw: float | None = None) -> Route:
        """Plan a route between two world points.

        Start and goal snap to their nearest lanes (the start respecting
        ``start_yaw`` so the route leaves in the direction the vehicle
        faces).
        """
        start_lane, start_station, _ = self.town.nearest_lane(start, yaw_hint=start_yaw)
        goal_lane, goal_station, _ = self.town.nearest_lane(goal)

        if start_lane.ref == goal_lane.ref and goal_station >= start_station - 1.0:
            pts, cmds = self._lane_segment(start_lane, start_station, goal_station)
            return self._build_route(pts, cmds)

        lanes = self._astar(start_lane, start_station, goal_lane, goal_station)

        points: list[Vec2] = []
        commands: list[Command] = []
        for i, lane in enumerate(lanes):
            s0 = start_station if i == 0 else 0.0
            s1 = goal_station if i == len(lanes) - 1 else lane.length
            pts, cmds = self._lane_segment(lane, s0, s1)
            # Replace the tail of the previous lane's FOLLOW labels with the
            # junction command so the branch switches before the turn.
            if i + 1 < len(lanes):
                turn = self.town.turn_direction(lane, lanes[i + 1])
                command = Command[turn]
                self._relabel_tail(pts, cmds, command)
                connector = self.town.connection_curve(lane, lanes[i + 1])
                conn_pts = connector.points[1:-1]
                pts = pts + conn_pts
                cmds = cmds + [command] * len(conn_pts)
            points.extend(pts)
            commands.extend(cmds)
        return self._build_route(points, commands)

    # ------------------------------------------------------------------
    @staticmethod
    def _lane_segment(
        lane: Lane, s0: float, s1: float, spacing: float = 2.0
    ) -> tuple[list[Vec2], list[Command]]:
        s0 = min(max(s0, 0.0), lane.length)
        s1 = min(max(s1, 0.0), lane.length)
        if s1 <= s0 + 1e-6:
            point = lane.centerline.point_at(s0)
            return [point], [Command.FOLLOW]
        n = max(2, int(math.ceil((s1 - s0) / spacing)) + 1)
        stations = np.linspace(s0, s1, n)
        pts = [lane.centerline.point_at(float(s)) for s in stations]
        return pts, [Command.FOLLOW] * len(pts)

    @staticmethod
    def _relabel_tail(pts: list[Vec2], cmds: list[Command], command: Command) -> None:
        """Label the last ``COMMAND_HORIZON`` metres of a lane with ``command``."""
        remaining = COMMAND_HORIZON
        for i in range(len(pts) - 1, 0, -1):
            cmds[i] = command
            remaining -= pts[i].distance_to(pts[i - 1])
            if remaining <= 0.0:
                break
        if remaining > 0.0 and cmds:
            cmds[0] = command

    @staticmethod
    def _build_route(points: list[Vec2], commands: list[Command]) -> Route:
        # Deduplicate consecutive points that would create zero-length segments.
        clean_pts: list[Vec2] = []
        clean_cmds: list[Command] = []
        for p, c in zip(points, commands):
            if clean_pts and p.distance_to(clean_pts[-1]) < 1e-6:
                continue
            clean_pts.append(p)
            clean_cmds.append(c)
        if len(clean_pts) < 2:
            # Degenerate same-point route; synthesise a short stub so the
            # Route polyline stays valid.
            clean_pts.append(clean_pts[0] + Vec2(0.5, 0.0))
            clean_cmds.append(clean_cmds[0])
        return Route(Polyline(clean_pts), clean_cmds)
