"""Imitation-learning training loop and checkpoint caching.

Plain minibatch Adam on a weighted MSE over ``[steer, throttle, brake]``
(steering weighted highest — a throttle error costs comfort, a steering
error costs the lane).  :func:`get_or_train_default_model` is the entry
point benchmarks use: it collects data, trains, and caches the checkpoint
keyed by a configuration hash so a benchmark session trains at most once.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..sim.builders import SimulationBuilder
from ..sim.scenario import make_scenarios
from ..sim.town import GridTownConfig
from .dataset import CollectionConfig, DrivingDataset, collect_imitation_data
from .ilcnn import ILCNN, ILCNNConfig, preprocess_image
from .nn.losses import mse_loss
from .nn.optim import Adam

__all__ = [
    "TrainConfig",
    "TrainingHistory",
    "train_ilcnn",
    "get_or_train_default_model",
    "DEFAULT_ARTIFACT_DIR",
]

DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "_artifacts"

#: Loss weights over [steer, throttle, brake].
ACTION_WEIGHTS = np.array([1.0, 0.35, 0.35], dtype=np.float32)


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run.

    ``balance_commands`` oversamples under-represented command branches
    (turns are rare relative to lane following on a grid town; without
    rebalancing the turn branches underfit and the agent misses junctions).
    """

    epochs: int = 12
    batch_size: int = 64
    lr: float = 1e-3
    val_fraction: float = 0.1
    seed: int = 0
    balance_commands: bool = True
    max_oversample: int = 4
    log_every: int = 0  # batches; 0 silences progress output


@dataclass
class TrainingHistory:
    """Per-epoch loss curves from :func:`train_ilcnn`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0

    def best_val(self) -> float:
        """Lowest validation loss reached."""
        return min(self.val_loss) if self.val_loss else float("nan")


def _batch_tensors(
    dataset: DrivingDataset, indices: np.ndarray, input_hw: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    images = np.stack(
        [preprocess_image(dataset.images[i], input_hw) for i in indices]
    )
    return (
        images,
        dataset.speeds[indices],
        dataset.commands[indices].astype(np.int64),
        dataset.actions[indices],
    )


def _evaluate(model: ILCNN, dataset: DrivingDataset, batch_size: int) -> float:
    model.set_training(False)
    losses: list[float] = []
    weights: list[int] = []
    for start in range(0, len(dataset), batch_size):
        idx = np.arange(start, min(start + batch_size, len(dataset)))
        images, speeds, commands, actions = _batch_tensors(
            dataset, idx, model.config.input_hw
        )
        pred = model.forward(images, speeds, commands)
        loss, _ = mse_loss(pred, actions, ACTION_WEIGHTS)
        losses.append(loss)
        weights.append(len(idx))
    return float(np.average(losses, weights=weights))


def train_ilcnn(
    dataset: DrivingDataset,
    model_config: ILCNNConfig | None = None,
    config: TrainConfig | None = None,
) -> tuple[ILCNN, TrainingHistory]:
    """Train a fresh :class:`ILCNN` on ``dataset``.

    Returns the trained model (left in inference mode) and loss history.
    """
    cfg = config or TrainConfig()
    model = ILCNN(model_config)
    rng = np.random.default_rng(cfg.seed)
    train_set, val_set = dataset.split(cfg.val_fraction, rng)
    optimizer = Adam(model.parameters(), lr=cfg.lr)
    history = TrainingHistory()
    started = time.perf_counter()

    base_indices = np.arange(len(train_set))
    if cfg.balance_commands:
        counts = np.bincount(train_set.commands.astype(np.int64), minlength=1)
        largest = counts.max()
        expanded = [base_indices]
        for cmd, count in enumerate(counts):
            if count == 0 or count == largest:
                continue
            repeat = min(cfg.max_oversample, int(largest // count)) - 1
            if repeat > 0:
                cmd_idx = base_indices[train_set.commands == cmd]
                expanded.extend([cmd_idx] * repeat)
        base_indices = np.concatenate(expanded)

    for epoch in range(cfg.epochs):
        model.set_training(True)
        order = base_indices[rng.permutation(len(base_indices))]
        epoch_losses: list[float] = []
        for batch_no, start in enumerate(range(0, len(order), cfg.batch_size)):
            idx = order[start : start + cfg.batch_size]
            images, speeds, commands, actions = _batch_tensors(
                train_set, idx, model.config.input_hw
            )
            pred = model.forward(images, speeds, commands)
            loss, grad = mse_loss(pred, actions, ACTION_WEIGHTS)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()
            epoch_losses.append(loss)
            if cfg.log_every and (batch_no + 1) % cfg.log_every == 0:
                print(
                    f"epoch {epoch + 1}/{cfg.epochs} batch {batch_no + 1}: "
                    f"loss={np.mean(epoch_losses[-cfg.log_every:]):.5f}"
                )
        history.train_loss.append(float(np.mean(epoch_losses)))
        history.val_loss.append(_evaluate(model, val_set, cfg.batch_size))

    history.wall_time_s = time.perf_counter() - started
    model.set_training(False)
    return model, history


#: Scenario suite used to collect the default imitation dataset.  Fixed so
#: the cached checkpoint digest is stable; evaluation campaigns use other
#: seeds, keeping train and test missions disjoint.
_DATA_SCENARIO_SEED = 100
_DATA_NPC_VEHICLES = 2
_DATA_PEDESTRIANS = 2


def _default_config_digest(
    town: GridTownConfig,
    n_scenarios: int,
    collection: CollectionConfig,
    model_config: ILCNNConfig,
    train_config: TrainConfig,
    camera_hw: tuple[int, int],
) -> str:
    blob = json.dumps(
        {
            "town": asdict(town),
            "n_scenarios": n_scenarios,
            "collection": asdict(collection),
            "model": asdict(model_config),
            "train": asdict(train_config),
            "camera": list(camera_hw),
            "data_seed": _DATA_SCENARIO_SEED,
            "version": 4,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _data_scenarios(n: int, town_config: GridTownConfig) -> list:
    """Training-data scenarios with planner-accurate time limits."""
    from ..sim.town import build_grid_town
    from .planner import PlanningError, RoutePlanner

    town = build_grid_town(town_config)
    planner = RoutePlanner(town)

    def route_length(start, goal):
        try:
            return planner.plan(start.position, goal, start_yaw=start.yaw).length
        except PlanningError:
            return None

    return make_scenarios(
        n,
        seed=_DATA_SCENARIO_SEED,
        town_config=town_config,
        n_npc_vehicles=_DATA_NPC_VEHICLES,
        n_pedestrians=_DATA_PEDESTRIANS,
        route_length_fn=route_length,
    )


def get_or_train_default_model(
    cache_dir: Path | str = DEFAULT_ARTIFACT_DIR,
    town_config: GridTownConfig | None = None,
    n_scenarios: int = 16,
    collection: CollectionConfig | None = None,
    model_config: ILCNNConfig | None = None,
    train_config: TrainConfig | None = None,
    builder: SimulationBuilder | None = None,
    verbose: bool = True,
) -> ILCNN:
    """The campaign-default trained agent model, cached on disk.

    First call collects an imitation dataset with the expert and trains;
    later calls (same configuration) load the checkpoint.  The cache key
    hashes every configuration input, so changing any of them retrains.
    """
    town_config = town_config or GridTownConfig()
    collection = collection or CollectionConfig()
    model_config = model_config or ILCNNConfig()
    train_config = train_config or TrainConfig()
    builder = builder or SimulationBuilder()
    cache_dir = Path(cache_dir)
    digest = _default_config_digest(
        town_config,
        n_scenarios,
        collection,
        model_config,
        train_config,
        (builder.camera.height, builder.camera.width),
    )
    checkpoint = cache_dir / f"ilcnn-{digest}.npz"
    if checkpoint.exists():
        return ILCNN.load(checkpoint, model_config)

    if verbose:
        print(f"[training] no cached model at {checkpoint.name}; collecting data...")
    scenarios = _data_scenarios(n_scenarios, town_config)
    dataset = collect_imitation_data(scenarios, builder=builder, config=collection)
    if verbose:
        print(
            f"[training] {len(dataset)} frames, commands={dataset.command_histogram()}; training..."
        )
    model, history = train_ilcnn(dataset, model_config, train_config)
    if verbose:
        print(
            f"[training] done in {history.wall_time_s:.0f}s; "
            f"val loss {history.best_val():.5f}"
        )
    model.save(checkpoint)
    return model
