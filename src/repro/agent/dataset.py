"""Imitation-learning dataset: storage and on-policy collection.

The dataset is collected the way Codevilla et al. collect theirs: drive the
expert through missions and record ``(camera image, measured speed, route
command) → expert action`` tuples.  Crucially, *steering noise sessions*
perturb the applied control while the recorded label stays the expert's
corrective action — without these the cloned policy never learns to
recover from its own drift and fault-injection results degenerate.

Images are stored uint8 and converted per batch, keeping a 20k-frame
dataset around 350 MB → ~55 MB at the default camera size.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..sim.builders import SimulationBuilder
from ..sim.scenario import Scenario
from .autopilot import Expert, ExpertConfig
from .planner import RoutePlanner

__all__ = ["DrivingDataset", "CollectionConfig", "collect_imitation_data"]


@dataclass
class DrivingDataset:
    """Column-oriented imitation dataset.

    ``images``: (N, H, W, 3) uint8 camera frames;
    ``speeds``: (N,) float32 measured speeds (m/s);
    ``commands``: (N,) int8 route commands (branch indices);
    ``actions``: (N, 3) float32 expert ``[steer, throttle, brake]``.
    """

    images: np.ndarray
    speeds: np.ndarray
    commands: np.ndarray
    actions: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.images)
        if not (len(self.speeds) == len(self.commands) == len(self.actions) == n):
            raise ValueError("dataset columns have mismatched lengths")

    def __len__(self) -> int:
        return len(self.images)

    def command_histogram(self) -> dict[int, int]:
        """Sample counts per command (branch balance diagnostics)."""
        values, counts = np.unique(self.commands, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def split(self, val_fraction: float, rng: np.random.Generator) -> tuple["DrivingDataset", "DrivingDataset"]:
        """Shuffle and split into (train, validation)."""
        if not 0.0 < val_fraction < 1.0:
            raise ValueError("val_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        n_val = max(1, int(len(self) * val_fraction))
        val_idx, train_idx = order[:n_val], order[n_val:]
        return self.subset(train_idx), self.subset(val_idx)

    def subset(self, indices: np.ndarray) -> "DrivingDataset":
        """Dataset restricted to ``indices``."""
        return DrivingDataset(
            self.images[indices],
            self.speeds[indices],
            self.commands[indices],
            self.actions[indices],
        )

    def save(self, path: str | Path) -> None:
        """Write the dataset to ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            images=self.images,
            speeds=self.speeds,
            commands=self.commands,
            actions=self.actions,
        )

    @classmethod
    def load(cls, path: str | Path) -> "DrivingDataset":
        """Read a dataset written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                data["images"].copy(),
                data["speeds"].copy(),
                data["commands"].copy(),
                data["actions"].copy(),
            )

    @classmethod
    def concatenate(cls, parts: list["DrivingDataset"]) -> "DrivingDataset":
        """Stack several datasets into one."""
        if not parts:
            raise ValueError("nothing to concatenate")
        return cls(
            np.concatenate([p.images for p in parts]),
            np.concatenate([p.speeds for p in parts]),
            np.concatenate([p.commands for p in parts]),
            np.concatenate([p.actions for p in parts]),
        )


@dataclass(frozen=True)
class CollectionConfig:
    """Parameters of on-policy expert data collection.

    Noise sessions: with probability ``noise_start_prob`` per frame (when no
    session is active) a triangular steering perturbation of duration
    ``noise_duration_s`` and peak ``noise_amplitude`` is *applied* to the
    car while the *label* stays the expert's command.
    """

    seed: int = 0
    noise_start_prob: float = 0.015
    noise_duration_s: float = 0.9
    noise_amplitude: float = 0.55
    max_frames_per_episode: int = 2000


def collect_imitation_data(
    scenarios: list[Scenario],
    builder: SimulationBuilder | None = None,
    config: CollectionConfig | None = None,
    expert_config: ExpertConfig | None = None,
) -> DrivingDataset:
    """Drive the expert through ``scenarios`` and record imitation tuples.

    Runs the full sensor pipeline (rendered camera frames, noisy GPS and
    speed) so the network trains on exactly the distribution it will see
    at deployment.
    """
    builder = builder or SimulationBuilder()
    cfg = config or CollectionConfig()
    rng = np.random.default_rng(cfg.seed)

    images: list[np.ndarray] = []
    speeds: list[float] = []
    commands: list[int] = []
    actions: list[np.ndarray] = []

    for scenario in scenarios:
        handles = builder.build_episode(scenario)
        world, suite = handles.world, handles.sensors
        ego = world.ego
        assert ego is not None
        planner = RoutePlanner(handles.town)
        route = planner.plan(
            scenario.mission.start.position,
            scenario.mission.goal,
            start_yaw=scenario.mission.start.yaw,
        )
        expert = Expert(world, route, expert_config)

        noise_frames_left = 0
        noise_peak = 0.0
        noise_len = max(1, int(cfg.noise_duration_s * world.fps))

        for _ in range(cfg.max_frames_per_episode):
            frame = suite.read_frame(world, ego, world.frame, world.rng)
            control = expert.control(world.dt)
            command = expert.current_command()

            images.append(frame.image)
            speeds.append(frame.speed)
            commands.append(int(command))
            actions.append(
                np.array([control.steer, control.throttle, control.brake], dtype=np.float32)
            )

            if noise_frames_left == 0 and rng.random() < cfg.noise_start_prob:
                noise_frames_left = noise_len
                noise_peak = float(rng.uniform(-1.0, 1.0)) * cfg.noise_amplitude
            if noise_frames_left > 0:
                # Triangular profile: ramp to the peak mid-session and back.
                progress = 1.0 - noise_frames_left / noise_len
                envelope = 1.0 - abs(2.0 * progress - 1.0)
                noisy_steer = control.steer + noise_peak * envelope
                applied = type(control)(
                    steer=noisy_steer, throttle=control.throttle, brake=control.brake
                )
                noise_frames_left -= 1
            else:
                applied = control

            ego.apply_control(applied)
            world.tick()
            if ego.position.distance_to(scenario.mission.goal) < scenario.mission.success_radius:
                break
            if world.time_s > scenario.mission.time_limit_s:
                break

    return DrivingDataset(
        np.stack(images).astype(np.uint8),
        np.array(speeds, dtype=np.float32),
        np.array(commands, dtype=np.int8),
        np.stack(actions),
    )
