"""The conditional imitation-learning network (Codevilla et al., ICRA'18).

Architecture (scaled to CPU training, same topology as the paper's agent):

* a **perception trunk**: three strided convolutions over the RGB camera
  image, flattened into a 128-d feature vector;
* a **measurement head** embedding the measured speed;
* a **joint layer** fusing both;
* four **command branches** (FOLLOW / LEFT / RIGHT / STRAIGHT), each a
  small MLP emitting ``[steer, throttle, brake]``; the route planner's
  command selects which branch drives the car.

The network is a first-class AVFI fault target: all weights are reachable
through :meth:`named_parameters` (weight faults) and every layer carries
``forward_hooks`` (activation faults).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nn.layers import Conv2d, Dense, Dropout, Flatten, Module, Param, ReLU, Sequential
from .nn.serialize import apply_state, load_state, save_state
from .planner import Command

__all__ = ["ILCNNConfig", "ILCNN", "preprocess_image"]

#: Speed normalisation divisor (m/s) so inputs stay O(1).
SPEED_SCALE = 10.0


@dataclass(frozen=True)
class ILCNNConfig:
    """Hyper-parameters of the branched network.

    ``input_hw`` is the post-downsampling image size fed to the trunk; the
    raw camera frame is mean-pooled down to it (Codevilla et al. likewise
    resize the camera stream before the network).
    """

    input_hw: tuple[int, int] = (32, 48)
    conv_channels: tuple[int, int, int] = (16, 32, 48)
    trunk_dim: int = 128
    speed_dim: int = 32
    branch_hidden: int = 64
    dropout: float = 0.1
    n_branches: int = 4
    seed: int = 7


def preprocess_image(image: np.ndarray, input_hw: tuple[int, int]) -> np.ndarray:
    """Camera frame (H, W, 3) uint8 → network tensor (3, h, w) float32.

    Mean-pools by the integer factor between the camera and network sizes
    and scales to [0, 1].  Raises when the sizes are not integer multiples —
    a configuration error better caught loudly.
    """
    h_out, w_out = input_hw
    h_in, w_in = image.shape[:2]
    if h_in % h_out or w_in % w_out:
        raise ValueError(
            f"camera size {h_in}x{w_in} is not an integer multiple of network input {h_out}x{w_out}"
        )
    fy, fx = h_in // h_out, w_in // w_out
    x = image.astype(np.float32) / 255.0
    x = x.reshape(h_out, fy, w_out, fx, 3).mean(axis=(1, 3))
    # Corrupted frames (bit-flipped payloads) may carry NaN/inf; the network
    # must receive finite numbers even if they are garbage.
    np.nan_to_num(x, copy=False, nan=0.0, posinf=1.0, neginf=0.0)
    return np.ascontiguousarray(x.transpose(2, 0, 1))


class ILCNN:
    """Branched conditional imitation-learning model."""

    def __init__(self, config: ILCNNConfig | None = None):
        self.config = config or ILCNNConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        c1, c2, c3 = cfg.conv_channels
        h, w = cfg.input_hw
        conv1 = Conv2d(3, c1, 5, stride=2, pad=2, rng=rng)
        conv2 = Conv2d(c1, c2, 3, stride=2, pad=1, rng=rng)
        conv3 = Conv2d(c2, c3, 3, stride=2, pad=1, rng=rng)
        h3, w3 = h, w
        for conv in (conv1, conv2, conv3):
            _, h3, w3 = conv.output_shape(h3, w3)
        flat = c3 * h3 * w3
        self.trunk = Sequential(
            conv1,
            ReLU(),
            conv2,
            ReLU(),
            conv3,
            ReLU(),
            Flatten(),
            Dense(flat, cfg.trunk_dim, rng),
            ReLU(),
        )
        self.speed_head = Sequential(Dense(1, cfg.speed_dim, rng), ReLU())
        self.join = Sequential(
            Dense(cfg.trunk_dim + cfg.speed_dim, cfg.trunk_dim, rng),
            ReLU(),
            Dropout(cfg.dropout, rng=np.random.default_rng(cfg.seed + 1)),
        )
        self.branches = [
            Sequential(
                Dense(cfg.trunk_dim, cfg.branch_hidden, rng),
                ReLU(),
                Dense(cfg.branch_hidden, 3, rng),
            )
            for _ in range(cfg.n_branches)
        ]
        self._branch_masks: list[np.ndarray] | None = None
        self._n: int = 0

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, images: np.ndarray, speeds: np.ndarray, commands: np.ndarray) -> np.ndarray:
        """Batch forward pass.

        ``images``: (N, 3, h, w) float32; ``speeds``: (N,) or (N, 1) m/s;
        ``commands``: (N,) ints in [0, n_branches).  Returns (N, 3) raw
        ``[steer, throttle, brake]`` predictions.
        """
        n = images.shape[0]
        speeds = np.asarray(speeds, dtype=np.float32).reshape(n, 1) / SPEED_SCALE
        # Corrupted measurements (bit flips) can carry NaN/inf or absurd
        # magnitudes; bound them so one bad scalar cannot overflow float32
        # through the dense layers.
        np.nan_to_num(speeds, copy=False, nan=0.0, posinf=10.0, neginf=-10.0)
        np.clip(speeds, -10.0, 10.0, out=speeds)
        commands = np.asarray(commands)
        if commands.min() < 0 or commands.max() >= self.config.n_branches:
            raise ValueError("command outside branch range")
        features = self.trunk(images.astype(np.float32))
        speed_feat = self.speed_head(speeds)
        joint = self.join(np.concatenate([features, speed_feat], axis=1))
        out = np.zeros((n, 3), dtype=np.float32)
        self._branch_masks = []
        self._n = n
        for b, branch in enumerate(self.branches):
            mask = commands == b
            self._branch_masks.append(mask)
            if np.any(mask):
                out[mask] = branch(joint[mask])
        return out

    def backward(self, grad_out: np.ndarray) -> None:
        """Back-propagate a (N, 3) output gradient through the whole net."""
        if self._branch_masks is None:
            raise RuntimeError("backward before forward")
        cfg = self.config
        grad_joint = np.zeros((self._n, cfg.trunk_dim), dtype=np.float32)
        for branch, mask in zip(self.branches, self._branch_masks):
            if np.any(mask):
                grad_joint[mask] = branch.backward(grad_out[mask])
        grad_concat = self.join.backward(grad_joint)
        self.trunk.backward(grad_concat[:, : cfg.trunk_dim])
        self.speed_head.backward(grad_concat[:, cfg.trunk_dim :])

    def predict_one(self, image: np.ndarray, speed: float, command: Command) -> np.ndarray:
        """Single-frame inference from a raw camera image."""
        x = preprocess_image(image, self.config.input_hw)[None, ...]
        return self.forward(x, np.array([speed]), np.array([int(command)]))[0]

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def submodules(self) -> dict[str, Sequential]:
        """Named top-level blocks (stable order)."""
        blocks = {"trunk": self.trunk, "speed_head": self.speed_head, "join": self.join}
        for i, branch in enumerate(self.branches):
            blocks[f"branch{i}"] = branch
        return blocks

    def parameters(self) -> list[Param]:
        """All trainable parameters."""
        return [p for block in self.submodules().values() for p in block.parameters()]

    def named_parameters(self) -> dict[str, Param]:
        """Dotted-name → parameter mapping (checkpoint/fault addressing)."""
        out: dict[str, Param] = {}
        for block_name, block in self.submodules().items():
            for name, p in block.named_parameters(f"{block_name}."):
                out[name] = p
        return out

    def n_weights(self) -> int:
        """Total scalar weight count."""
        return sum(p.size for p in self.parameters())

    def set_training(self, flag: bool) -> None:
        """Toggle training mode on every block."""
        for block in self.submodules().values():
            block.set_training(flag)

    def zero_grad(self) -> None:
        """Reset all gradients."""
        for block in self.submodules().values():
            block.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all weights keyed by dotted names."""
        return {name: p.data.copy() for name, p in self.named_parameters().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`state_dict` (strict)."""
        apply_state({n: p.data for n, p in self.named_parameters().items()}, state)

    def save(self, path) -> None:
        """Write weights to an ``.npz`` checkpoint."""
        save_state(self.state_dict(), path)

    @classmethod
    def load(cls, path, config: ILCNNConfig | None = None) -> "ILCNN":
        """Build a model and load an ``.npz`` checkpoint into it."""
        model = cls(config)
        model.load_state_dict(load_state(path))
        model.set_training(False)
        return model
