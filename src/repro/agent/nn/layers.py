"""Neural-network layers with explicit forward/backward passes.

A deliberately small library: enough to build and train the conditional
imitation-learning CNN on CPU, with two features AVFI needs that off-the-
shelf frameworks would hide:

* every layer exposes its parameters as :class:`Param` objects whose raw
  ``float32`` buffers fault injectors can flip bits in;
* every :class:`Module` has a ``forward_hooks`` list, called with
  ``(module, output)`` after each forward — the seam used by
  activation-fault injection.

No autograd: each layer implements ``backward`` explicitly and caches what
it needs during ``forward``.  Training code drives the chain rule by hand,
which keeps the whole stack inspectable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from .tensorlib import col2im, conv_output_size, he_init, im2col, xavier_init

__all__ = [
    "Param",
    "Module",
    "Dense",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "Dropout",
    "Sequential",
]


class Param:
    """A trainable tensor with its gradient buffer."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def size(self) -> int:
        """Number of scalar weights."""
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the gradient buffer."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Param({self.name}, shape={self.data.shape})"


ForwardHook = Callable[["Module", np.ndarray], np.ndarray]


class Module:
    """Base class: forward/backward plus hook and parameter plumbing."""

    def __init__(self) -> None:
        self.training = True
        self.forward_hooks: list[ForwardHook] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output (and cache for backward)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` w.r.t. the output; returns grad w.r.t. input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        for hook in self.forward_hooks:
            out = hook(self, out)
        return out

    def parameters(self) -> list[Param]:
        """All trainable parameters of this module (possibly empty)."""
        return []

    def set_training(self, flag: bool) -> None:
        """Switch between training and inference behaviour (Dropout etc.)."""
        self.training = flag

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters():
            p.zero_grad()


class Dense(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.W = Param("W", he_init((in_features, out_features), in_features, rng))
        self.b = Param("b", np.zeros(out_features, dtype=np.float32))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"Dense expected {self.in_features} features, got {x.shape[-1]}")
        self._x = x
        return x @ self.W.data + self.b.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.W.grad += self._x.T @ grad
        self.b.grad += grad.sum(axis=0)
        return grad @ self.W.data.T

    def parameters(self) -> list[Param]:
        return [self.W, self.b]


class Conv2d(Module):
    """2-D convolution over ``(N, C, H, W)`` tensors via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel * kernel
        self.W = Param("W", he_init((fan_in, out_channels), fan_in, rng))
        self.b = Param("b", np.zeros(out_channels, dtype=np.float32))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def output_shape(self, h: int, w: int) -> tuple[int, int, int]:
        """``(C_out, H_out, W_out)`` for an ``(h, w)`` input."""
        return (
            self.out_channels,
            conv_output_size(h, self.kernel, self.stride, self.pad),
            conv_output_size(w, self.kernel, self.stride, self.pad),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        self._cols = cols
        self._x_shape = x.shape
        out = cols @ self.W.data + self.b.data
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, c_out, out_h, out_w = grad.shape
        g = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        self.W.grad += self._cols.T @ g
        self.b.grad += g.sum(axis=0)
        dcols = g @ self.W.data.T
        return col2im(dcols, self._x_shape, self.kernel, self.kernel, self.stride, self.pad)

    def parameters(self) -> list[Param]:
        return [self.W, self.b]


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad * (1.0 - self._out**2)


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity at inference time."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> list[Param]:
        return [p for module in self.modules for p in module.parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Param]]:
        """Yield ``(dotted_name, param)`` pairs, stable across runs."""
        for i, module in enumerate(self.modules):
            if isinstance(module, Sequential):
                yield from module.named_parameters(f"{prefix}{i}.")
            else:
                for p in module.parameters():
                    yield f"{prefix}{i}.{p.name}", p

    def set_training(self, flag: bool) -> None:
        super().set_training(flag)
        for module in self.modules:
            module.set_training(flag)

    def zero_grad(self) -> None:
        for module in self.modules:
            module.zero_grad()

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
