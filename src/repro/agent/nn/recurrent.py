"""Recurrent layer (Elman RNN) with truncated BPTT.

The paper's fig. 1 shows an RNN stage in the AV neural-network stack
("RNN" feeding the fully connected layer).  The branched IL-CNN itself is
feed-forward, so the RNN is offered as an optional temporal smoother:
:class:`ElmanRNN` consumes a window of feature vectors and its last hidden
state can replace the instantaneous trunk features.  It is also a fault
target in its own right (recurrent weights are parameters like any other).
"""

from __future__ import annotations

import numpy as np

from .layers import Module, Param
from .tensorlib import xavier_init

__all__ = ["ElmanRNN"]


class ElmanRNN(Module):
    """``h_t = tanh(x_t W_x + h_{t-1} W_h + b)`` over a sequence.

    Input shape ``(T, N, D)``; output shape ``(T, N, H)``.  ``backward``
    runs full back-propagation through time over the cached sequence.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.Wx = Param("Wx", xavier_init((input_size, hidden_size), input_size, hidden_size, rng))
        self.Wh = Param("Wh", xavier_init((hidden_size, hidden_size), hidden_size, hidden_size, rng))
        self.b = Param("b", np.zeros(hidden_size, dtype=np.float32))
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"ElmanRNN expected (T, N, {self.input_size}), got {x.shape}")
        t_len, n, _ = x.shape
        h = np.zeros((t_len + 1, n, self.hidden_size), dtype=np.float32)
        for t in range(t_len):
            h[t + 1] = np.tanh(x[t] @ self.Wx.data + h[t] @ self.Wh.data + self.b.data)
        self._cache = (x, h)
        return h[1:]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        x, h = self._cache
        t_len, n, _ = x.shape
        dx = np.zeros_like(x)
        dh_next = np.zeros((n, self.hidden_size), dtype=np.float32)
        for t in reversed(range(t_len)):
            dh = grad[t] + dh_next
            dz = dh * (1.0 - h[t + 1] ** 2)
            self.Wx.grad += x[t].T @ dz
            self.Wh.grad += h[t].T @ dz
            self.b.grad += dz.sum(axis=0)
            dx[t] = dz @ self.Wx.data.T
            dh_next = dz @ self.Wh.data.T
        return dx

    def last_hidden(self, x: np.ndarray) -> np.ndarray:
        """Convenience: run the sequence, return the final hidden state."""
        return self.forward(x)[-1]

    def parameters(self) -> list[Param]:
        return [self.Wx, self.Wh, self.b]
