"""A small numpy deep-learning library (the TensorFlow/PyTorch stand-in).

Built for two users: the conditional imitation-learning agent (training
and inference on CPU) and AVFI's ML-fault injector (raw access to weight
buffers and activation hooks).
"""

from .layers import Conv2d, Dense, Dropout, Flatten, Module, Param, ReLU, Sequential, Tanh
from .losses import huber_loss, l1_loss, mse_loss
from .optim import SGD, Adam, Optimizer
from .recurrent import ElmanRNN
from .serialize import apply_state, load_state, save_state
from .tensorlib import col2im, conv_output_size, he_init, im2col, xavier_init

__all__ = [
    "Conv2d",
    "Dense",
    "Dropout",
    "Flatten",
    "Module",
    "Param",
    "ReLU",
    "Sequential",
    "Tanh",
    "huber_loss",
    "l1_loss",
    "mse_loss",
    "SGD",
    "Adam",
    "Optimizer",
    "ElmanRNN",
    "apply_state",
    "load_state",
    "save_state",
    "col2im",
    "conv_output_size",
    "he_init",
    "im2col",
    "xavier_init",
]
