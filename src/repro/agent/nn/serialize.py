"""Checkpoint serialisation for named parameter collections.

Models expose ``state_dict()``/``load_state_dict()`` built on named
parameters; this module moves those dicts to and from ``.npz`` files.
Loading validates names and shapes strictly — silently accepting a
mismatched checkpoint would corrupt experiments in ways that look exactly
like injected faults.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_state", "load_state"]


def save_state(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Write a name→array mapping to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a name→array mapping written by :func:`save_state`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}


def apply_state(
    named_params: dict[str, "np.ndarray"], state: dict[str, np.ndarray], strict: bool = True
) -> None:
    """Copy ``state`` arrays into parameter buffers in-place.

    ``named_params`` maps names to the *parameter data arrays* (not Param
    objects) so this module stays independent of the layer classes.
    """
    missing = set(named_params) - set(state)
    unexpected = set(state) - set(named_params)
    if strict and (missing or unexpected):
        raise KeyError(
            f"checkpoint mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
        )
    for name, buf in named_params.items():
        if name not in state:
            continue
        arr = state[name]
        if arr.shape != buf.shape:
            raise ValueError(
                f"shape mismatch for {name}: checkpoint {arr.shape} vs model {buf.shape}"
            )
        buf[...] = arr
