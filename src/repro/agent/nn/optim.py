"""Optimisers operating on :class:`~repro.agent.nn.layers.Param` lists."""

from __future__ import annotations

import numpy as np

from .layers import Param

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: owns a parameter list and applies updates."""

    def __init__(self, params: list[Param], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all gradients."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[Param], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum > 0.0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Param],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1_corr = 1.0 - self.beta1**self._t
        b2_corr = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad * p.grad)
            m_hat = m / b1_corr
            v_hat = v / b2_corr
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
