"""Regression losses with explicit gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "l1_loss", "huber_loss"]


def _validate(pred: np.ndarray, target: np.ndarray, weights: np.ndarray | None) -> None:
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    if weights is not None and weights.shape != pred.shape[-1:]:
        raise ValueError("weights must match the last prediction dimension")


def mse_loss(
    pred: np.ndarray, target: np.ndarray, weights: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean squared error; returns ``(loss, dloss/dpred)``.

    ``weights`` optionally scales each output dimension (the IL loss weighs
    steering above throttle/brake).
    """
    _validate(pred, target, weights)
    diff = pred - target
    if weights is not None:
        diff = diff * np.sqrt(weights)
    n = diff.size
    loss = float(np.sum(diff * diff) / n)
    grad = 2.0 * diff / n
    if weights is not None:
        grad = grad * np.sqrt(weights)
    return loss, grad.astype(pred.dtype)


def l1_loss(
    pred: np.ndarray, target: np.ndarray, weights: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean absolute error; returns ``(loss, dloss/dpred)``."""
    _validate(pred, target, weights)
    diff = pred - target
    w = weights if weights is not None else 1.0
    n = diff.size
    loss = float(np.sum(np.abs(diff) * w) / n)
    grad = np.sign(diff) * w / n
    return loss, grad.astype(pred.dtype)


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss; quadratic within ``delta``, linear beyond."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    _validate(pred, target, None)
    diff = pred - target
    abs_diff = np.abs(diff)
    quad = abs_diff <= delta
    n = diff.size
    loss = float(
        (np.sum(0.5 * diff[quad] ** 2) + np.sum(delta * (abs_diff[~quad] - 0.5 * delta))) / n
    )
    grad = np.where(quad, diff, delta * np.sign(diff)) / n
    return loss, grad.astype(pred.dtype)
