"""Low-level tensor utilities for the numpy NN library.

Weight initialisers plus the im2col/col2im transforms that turn 2-D
convolution into matrix multiplication — the standard trick that makes a
pure-numpy CNN fast enough to train on CPU.

Array layout convention throughout the library: images are ``(N, C, H, W)``
float32; columns from :func:`im2col` are ``(N * out_h * out_w, C*kh*kw)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_init", "xavier_init", "im2col", "col2im", "conv_output_size"]


def he_init(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation (for ReLU layers)."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float32)


def xavier_init(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Xavier/Glorot-uniform initialisation (for linear/tanh layers)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution collapses spatial size {size} with k={kernel}, s={stride}, p={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into rows.

    ``x`` is ``(N, C, H, W)``.  Returns ``(cols, out_h, out_w)`` where
    ``cols`` is ``(N*out_h*out_w, C*kh*kw)`` — each row one receptive field.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    img = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant") if pad else x
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for ky in range(kh):
        y_max = ky + stride * out_h
        for kx in range(kw):
            x_max = kx + stride * out_w
            col[:, :, ky, kx, :, :] = img[:, :, ky:y_max:stride, kx:x_max:stride]
    cols = col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold column gradients back to image layout (adjoint of im2col)."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    col = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kh):
        y_max = ky + stride * out_h
        for kx in range(kw):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]
    if pad:
        return img[:, :, pad:-pad, pad:-pad]
    return img
