"""Driving agents: the ADA implementations campaigns can run.

Two agents ship with the library:

* :class:`NNAgent` — the paper's configuration: camera image and measured
  speed go through the conditional IL-CNN; the route planner (fed by noisy
  GPS) supplies the command that picks the branch.  This is the agent all
  headline experiments use.
* :class:`AutopilotAgent` — the privileged expert wrapped as an agent.
  Useful as an upper-bound baseline and for infrastructure tests that
  should not depend on learned behaviour.

Factories at the bottom adapt both to the campaign runner's
``factory(handles, mission) -> Agent`` protocol.  Both factories are
also *registered* by name in :data:`AGENT_REGISTRY`
(:func:`register_agent` / :func:`make_agent_factory`), which is what
lets declarative campaign specs (:mod:`repro.core.spec`) name an agent
as data instead of holding a callable — and both expose a
``config_signature()`` so checkpoint fingerprints can tell two agent
configurations apart (see
:func:`repro.core.campaign.episode_fingerprint`).
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from ..sim.builders import EpisodeHandles
from ..sim.geometry import Vec2
from ..sim.physics import VehicleControl
from ..sim.scenario import Mission
from ..sim.sensors import SensorFrame
from ..sim.town import Town
from ..sim.world import World
from .autopilot import Expert, ExpertConfig
from .ilcnn import ILCNN
from .planner import PlanningError, Route, RoutePlanner

__all__ = [
    "NNAgent",
    "AutopilotAgent",
    "AgentFactory",
    "NNAgentFactory",
    "AutopilotAgentFactory",
    "nn_agent_factory",
    "autopilot_agent_factory",
    "AGENT_REGISTRY",
    "register_agent",
    "make_agent_factory",
    "model_weight_digest",
    "nn_config_signature",
]


class NNAgent:
    """Camera-driven conditional imitation-learning agent.

    All world knowledge at ``step`` time comes from the
    :class:`~repro.sim.sensors.SensorFrame` — exactly the boundary AVFI's
    input fault injectors corrupt.  The agent replans from GPS if it drifts
    off its route (a real ADA's behaviour under perturbation).
    """

    def __init__(self, model: ILCNN, town: Town, replan_tolerance: float = 10.0):
        self.model = model
        self.town = town
        self.planner = RoutePlanner(town)
        self.replan_tolerance = replan_tolerance
        self.route: Route | None = None
        self.mission: Mission | None = None
        self.replans = 0

    def reset(self, mission: Mission) -> None:
        """Plan the route for a new mission."""
        self.mission = mission
        self.route = self.planner.plan(
            mission.start.position, mission.goal, start_yaw=mission.start.yaw
        )
        self.replans = 0

    def _maybe_replan(self, position: Vec2, heading: float) -> None:
        assert self.route is not None and self.mission is not None
        if not self.route.off_route(position, self.replan_tolerance):
            return
        try:
            self.route = self.planner.plan(position, self.mission.goal, start_yaw=heading)
            self.replans += 1
        except PlanningError:
            # Keep the stale route; better than stopping dead.
            pass

    def step(self, frame: SensorFrame) -> VehicleControl:
        """One control step from one sensor bundle."""
        if self.route is None or self.mission is None:
            raise RuntimeError("agent.step before reset")
        gps = Vec2(float(frame.gps[0]), float(frame.gps[1]))
        if not (np.isfinite(gps.x) and np.isfinite(gps.y)):
            # GPS corrupted beyond use: hold the wheel straight and coast.
            return VehicleControl(steer=0.0, throttle=0.0, brake=0.3)
        self._maybe_replan(gps, frame.heading)
        command = self.route.command_at(gps)
        steer, throttle, brake = self.model.predict_one(frame.image, frame.speed, command)

        steer = float(np.clip(steer, -1.0, 1.0))
        throttle = float(np.clip(throttle, 0.0, 1.0))
        brake = float(np.clip(brake, 0.0, 1.0))
        # Suppress brake dribble and contradictory pedals (standard IL
        # post-processing; the raw regressor emits small simultaneous values).
        if brake < 0.12:
            brake = 0.0
        if brake > 0.0 and throttle > brake:
            brake = 0.0
        elif brake > 0.0:
            throttle = 0.0
        if gps.distance_to(self.mission.goal) < self.mission.success_radius:
            return VehicleControl(steer=steer, brake=1.0)
        return VehicleControl(steer=steer, throttle=throttle, brake=brake)


class AutopilotAgent:
    """The privileged expert exposed through the agent interface."""

    def __init__(self, world: World, town: Town, expert_config: ExpertConfig | None = None):
        self.world = world
        self.town = town
        self.planner = RoutePlanner(town)
        self.expert_config = expert_config
        self._expert: Expert | None = None

    def reset(self, mission: Mission) -> None:
        """Plan the route and bind the expert controller."""
        route = self.planner.plan(
            mission.start.position, mission.goal, start_yaw=mission.start.yaw
        )
        self._expert = Expert(self.world, route, self.expert_config)

    def step(self, frame: SensorFrame) -> VehicleControl:
        """Delegate to the expert (which reads the world directly)."""
        if self._expert is None:
            raise RuntimeError("agent.step before reset")
        return self._expert.control(self.world.dt)


AgentFactory = Callable[[EpisodeHandles, Mission], "object"]


def model_weight_digest(model: ILCNN) -> str:
    """SHA-1 over the model's name-sorted weights — the semantic identity
    of a trained network, independent of how (or whether) it was
    serialised to disk.  This is both the hash inside
    :meth:`NNAgentFactory.config_signature` and the content address under
    which the artifact store ships weights to workers
    (:mod:`repro.core.artifacts`) — one key, so a warm-started worker
    provably runs the exact network the fingerprints claim."""
    digest = hashlib.sha1()
    params = model.named_parameters()
    for name in sorted(params):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(params[name].data).tobytes())
    return digest.hexdigest()


def nn_config_signature(weight_digest: str, replan_tolerance: float) -> str:
    """The canonical NN-agent signature string.  Shared by the eager
    factory and the artifact-backed one — they must render identically
    or the same campaign would fingerprint differently depending on how
    the weights travelled."""
    return (
        f"NNAgentFactory(weights={weight_digest[:12]}, "
        f"replan_tolerance={replan_tolerance!r})"
    )


class NNAgentFactory:
    """Factory adapting :class:`NNAgent` to the campaign protocol.

    A plain callable class (not a closure) so campaigns can be pickled to
    parallel worker processes; each worker then builds agents from its own
    copy of the model.
    """

    def __init__(self, model: ILCNN, replan_tolerance: float = 10.0):
        self.model = model
        self.replan_tolerance = replan_tolerance

    def __call__(self, handles: EpisodeHandles, mission: Mission) -> NNAgent:
        agent = NNAgent(self.model, handles.town, self.replan_tolerance)
        agent.reset(mission)
        return agent

    def config_signature(self) -> str:
        """Stable identity for checkpoint fingerprints.

        Hashes the model's weights (name-sorted), so swapping in a
        retrained or differently-shaped model invalidates checkpoints,
        while the ML-fault install/remove cycle — which restores weights
        exactly — does not.  Recomputed on every call rather than cached:
        the model may be trained further between campaigns.
        """
        return nn_config_signature(
            model_weight_digest(self.model), self.replan_tolerance
        )


class AutopilotAgentFactory:
    """Factory adapting :class:`AutopilotAgent` to the campaign protocol.

    Picklable for the same reason as :class:`NNAgentFactory`.
    """

    def __init__(self, expert_config: ExpertConfig | None = None):
        self.expert_config = expert_config

    def __call__(self, handles: EpisodeHandles, mission: Mission) -> AutopilotAgent:
        agent = AutopilotAgent(handles.world, handles.town, self.expert_config)
        agent.reset(mission)
        return agent

    def config_signature(self) -> str:
        """Stable identity for checkpoint fingerprints.

        ``expert_config=None`` normalises to the default
        :class:`ExpertConfig`, which is what the expert actually drives
        with — the two spellings must not invalidate each other's
        checkpoints.
        """
        config = self.expert_config if self.expert_config is not None else ExpertConfig()
        return f"AutopilotAgentFactory({config!r})"


def nn_agent_factory(model: ILCNN, replan_tolerance: float = 10.0) -> AgentFactory:
    """Factory adapting :class:`NNAgent` to the campaign protocol."""
    return NNAgentFactory(model, replan_tolerance)


def autopilot_agent_factory(expert_config: ExpertConfig | None = None) -> AgentFactory:
    """Factory adapting :class:`AutopilotAgent` to the campaign protocol."""
    return AutopilotAgentFactory(expert_config)


# ----------------------------------------------------------------------
# Agent registry: named factories for declarative campaign specs
# ----------------------------------------------------------------------

#: Named agent-factory builders.  Keys are the names campaign specs (and
#: the CLI's ``--agent``) use; values build a picklable agent factory
#: from JSON-able keyword params.
AGENT_REGISTRY: dict[str, Callable[..., AgentFactory]] = {}


def register_agent(name: str):
    """Decorator registering an agent-factory builder under ``name``.

    The builder takes only JSON-serialisable keyword arguments and
    returns a campaign-protocol factory — that restriction is what keeps
    agents nameable from a spec file.
    """

    def decorate(builder: Callable[..., AgentFactory]) -> Callable[..., AgentFactory]:
        existing = AGENT_REGISTRY.get(name)
        if existing is not None and existing is not builder:
            raise ValueError(f"agent name {name!r} is already registered")
        AGENT_REGISTRY[name] = builder
        return builder

    return decorate


def make_agent_factory(name: str, **params) -> AgentFactory:
    """Build a registered agent factory by name (spec/CLI entry point)."""
    try:
        builder = AGENT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(AGENT_REGISTRY))
        raise KeyError(f"unknown agent {name!r}; registered agents: {known}") from None
    return builder(**params)


@register_agent("autopilot")
def _build_autopilot_factory(**expert_params) -> AutopilotAgentFactory:
    """The privileged expert; params are :class:`ExpertConfig` fields."""
    config = ExpertConfig(**expert_params) if expert_params else None
    return AutopilotAgentFactory(config)


@register_agent("nn")
def _build_nn_factory(
    model_path: str | None = None, replan_tolerance: float = 10.0
) -> NNAgentFactory:
    """The paper's IL-CNN agent.

    ``model_path`` loads a saved checkpoint; without it the shared
    default model is loaded from the artifact cache (trained on first
    use — see :func:`repro.agent.training.get_or_train_default_model`).
    """
    if model_path is not None:
        model = ILCNN.load(model_path)
    else:
        from .training import get_or_train_default_model  # deferred: heavy

        model = get_or_train_default_model()
    model.set_training(False)
    return NNAgentFactory(model, replan_tolerance)
