"""The expert controller: training oracle and privileged baseline.

Codevilla et al. train their IL-CNN by imitating an automated expert inside
the simulator; this module is that expert.  It has privileged access to the
world (true pose, true actor positions) and combines:

* **pure-pursuit steering** on the planned route,
* a **proportional-integral speed controller** towards a context-dependent
  target (slower through turns, stop at the goal),
* a **hazard stop** that brakes for actors inside the forward cone —
  vehicles ahead, pedestrians on or near the road.

The expert also reports the route command at the current position, which
becomes the branch label in the imitation dataset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.geometry import Vec2
from ..sim.physics import VehicleControl
from ..sim.world import World
from .planner import Command, Route

__all__ = ["ExpertConfig", "Expert"]


@dataclass(frozen=True)
class ExpertConfig:
    """Tunables of the expert controller."""

    cruise_speed: float = 7.0  # m/s on straights
    turn_speed: float = 4.0  # m/s while a turn command is active
    goal_slow_radius: float = 12.0  # start easing off near the goal
    lookahead_base: float = 2.5
    lookahead_gain: float = 0.55  # lookahead = base + gain * speed
    kp_speed: float = 0.45
    ki_speed: float = 0.05
    hazard_cone_half_width: float = 2.4  # m to each side of the heading ray
    hazard_margin: float = 4.0  # extra stopping distance buffer, m
    pedestrian_caution_speed: float = 3.0


class Expert:
    """Privileged route-following controller for one episode."""

    def __init__(self, world: World, route: Route, config: ExpertConfig | None = None):
        if world.ego is None:
            raise ValueError("world needs an ego vehicle")
        self.world = world
        self.route = route
        self.config = config or ExpertConfig()
        self._speed_error_integral = 0.0

    # ------------------------------------------------------------------
    def current_command(self) -> Command:
        """The route command at the ego's position (the IL branch label)."""
        assert self.world.ego is not None
        return self.route.command_at(self.world.ego.position)

    # ------------------------------------------------------------------
    def _steer(self) -> float:
        ego = self.world.ego
        assert ego is not None
        cfg = self.config
        speed = max(ego.speed(), 0.0)
        lookahead = min(max(cfg.lookahead_base + cfg.lookahead_gain * speed, 3.0), 9.0)
        if self.current_command() != Command.FOLLOW:
            # Short lookahead through junctions: pure pursuit cuts corners
            # when it aims past the connector curve.
            lookahead = min(lookahead, 4.5)
        target = self.route.target_point(ego.position, lookahead)
        local = ego.transform.to_local(target)
        dist_sq = max(local.norm_sq(), 1e-6)
        curvature = 2.0 * local.y / dist_sq
        steer_angle = math.atan(curvature * ego.spec.wheelbase)
        return float(min(1.0, max(-1.0, steer_angle / ego.spec.max_steer_angle)))

    def _hazard_speed_cap(self) -> float | None:
        """Speed limit imposed by actors ahead; ``None`` when clear.

        A returned 0.0 means "emergency stop".
        """
        ego = self.world.ego
        assert ego is not None
        cfg = self.config
        forward = ego.transform.forward()
        stop_dist = ego.model.stopping_distance(ego.speed()) + cfg.hazard_margin
        cap: float | None = None
        for actor in self.world.actors:
            if actor.id == ego.id or not actor.alive:
                continue
            rel = actor.position - ego.position
            ahead = rel.dot(forward)
            lateral = abs(rel.cross(forward))
            if ahead <= 0.0:
                continue
            # Bumper-to-bumper gap, not centre distance, so queuing keeps
            # a physical clearance instead of creeping into contact.
            gap = ahead - ego.half_length - max(actor.half_length, actor.half_width)
            if actor.role == "pedestrian":
                # Slow near any pedestrian close to the driving corridor,
                # stop if one is inside it.
                if gap < stop_dist + 6.0 and lateral < cfg.hazard_cone_half_width + 2.0:
                    cap = cfg.pedestrian_caution_speed if cap is None else min(cap, cfg.pedestrian_caution_speed)
                if gap < stop_dist and lateral < cfg.hazard_cone_half_width:
                    return 0.0
            else:
                if gap < stop_dist and lateral < cfg.hazard_cone_half_width:
                    return 0.0
        return cap

    def _target_speed(self) -> float:
        ego = self.world.ego
        assert ego is not None
        cfg = self.config
        command = self.current_command()
        target = cfg.cruise_speed if command == Command.FOLLOW else cfg.turn_speed
        target *= self.world.weather.friction

        remaining = self.route.distance_remaining(ego.position)
        if remaining < cfg.goal_slow_radius:
            target = min(target, max(1.2, remaining * 0.5))

        hazard_cap = self._hazard_speed_cap()
        if hazard_cap is not None:
            target = min(target, hazard_cap)
        return target

    # ------------------------------------------------------------------
    def control(self, dt: float) -> VehicleControl:
        """Compute the expert command for the current world state."""
        ego = self.world.ego
        assert ego is not None
        cfg = self.config
        steer = self._steer()
        target = self._target_speed()
        error = target - ego.speed()

        if target <= 0.05:
            self._speed_error_integral = 0.0
            return VehicleControl(steer=steer, brake=1.0)

        self._speed_error_integral = min(
            max(self._speed_error_integral + error * dt, -4.0), 4.0
        )
        effort = cfg.kp_speed * error + cfg.ki_speed * self._speed_error_integral
        if effort >= 0.0:
            return VehicleControl(steer=steer, throttle=min(0.85, effort))
        return VehicleControl(steer=steer, brake=min(1.0, -effort))
