"""Autonomous Driving Agent substrate: planner, expert, IL-CNN, agents."""

from .agents import (
    AGENT_REGISTRY,
    AgentFactory,
    AutopilotAgent,
    AutopilotAgentFactory,
    NNAgent,
    NNAgentFactory,
    autopilot_agent_factory,
    make_agent_factory,
    nn_agent_factory,
    register_agent,
)
from .autopilot import Expert, ExpertConfig
from .dataset import CollectionConfig, DrivingDataset, collect_imitation_data
from .ilcnn import ILCNN, ILCNNConfig, preprocess_image
from .planner import COMMAND_HORIZON, Command, PlanningError, Route, RoutePlanner
from .training import (
    TrainConfig,
    TrainingHistory,
    get_or_train_default_model,
    train_ilcnn,
)

__all__ = [
    "AGENT_REGISTRY",
    "AgentFactory",
    "AutopilotAgent",
    "AutopilotAgentFactory",
    "NNAgent",
    "NNAgentFactory",
    "autopilot_agent_factory",
    "make_agent_factory",
    "nn_agent_factory",
    "register_agent",
    "Expert",
    "ExpertConfig",
    "CollectionConfig",
    "DrivingDataset",
    "collect_imitation_data",
    "ILCNN",
    "ILCNNConfig",
    "preprocess_image",
    "COMMAND_HORIZON",
    "Command",
    "PlanningError",
    "Route",
    "RoutePlanner",
    "TrainConfig",
    "TrainingHistory",
    "get_or_train_default_model",
    "train_ilcnn",
]
