"""Autonomous Driving Agent substrate: planner, expert, IL-CNN, agents."""

from .agents import (
    AgentFactory,
    AutopilotAgent,
    AutopilotAgentFactory,
    NNAgent,
    NNAgentFactory,
    autopilot_agent_factory,
    nn_agent_factory,
)
from .autopilot import Expert, ExpertConfig
from .dataset import CollectionConfig, DrivingDataset, collect_imitation_data
from .ilcnn import ILCNN, ILCNNConfig, preprocess_image
from .planner import COMMAND_HORIZON, Command, PlanningError, Route, RoutePlanner
from .training import (
    TrainConfig,
    TrainingHistory,
    get_or_train_default_model,
    train_ilcnn,
)

__all__ = [
    "AgentFactory",
    "AutopilotAgent",
    "AutopilotAgentFactory",
    "NNAgent",
    "NNAgentFactory",
    "autopilot_agent_factory",
    "nn_agent_factory",
    "Expert",
    "ExpertConfig",
    "CollectionConfig",
    "DrivingDataset",
    "collect_imitation_data",
    "ILCNN",
    "ILCNNConfig",
    "preprocess_image",
    "COMMAND_HORIZON",
    "Command",
    "PlanningError",
    "Route",
    "RoutePlanner",
    "TrainConfig",
    "TrainingHistory",
    "get_or_train_default_model",
    "train_ilcnn",
]
