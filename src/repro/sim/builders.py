"""Scenario realisation: turning a :class:`Scenario` into a live world.

Towns and renderers are expensive to build (texture rasterisation) but
immutable, so :class:`SimulationBuilder` caches them per town
configuration and stamps out fresh :class:`~repro.sim.world.World`
instances per episode.  Campaign code, dataset collection and the examples
all go through this one path, which keeps episode construction identical
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from .render import CameraModel, Renderer
from .scenario import Scenario
from .sensors import GPS, Camera, Lidar2D, SensorSuite, Speedometer
from .town import GridTownConfig, Town, build_grid_town
from .world import World

__all__ = ["SimulationBuilder", "EpisodeHandles"]


@dataclass
class EpisodeHandles:
    """Everything an episode runner needs for one scenario."""

    world: World
    sensors: SensorSuite
    town: Town


class SimulationBuilder:
    """Builds worlds for scenarios, caching towns and renderers."""

    def __init__(
        self,
        camera: CameraModel | None = None,
        texture_resolution: float = 0.25,
        with_lidar: bool = True,
        gps_noise_std: float = 0.4,
    ):
        self.camera = camera or CameraModel()
        self.texture_resolution = texture_resolution
        self.with_lidar = with_lidar
        self.gps_noise_std = gps_noise_std
        self._towns: dict[GridTownConfig, Town] = {}
        self._renderers: dict[GridTownConfig, Renderer] = {}

    def town_for(self, config: GridTownConfig) -> Town:
        """The (cached) town for a configuration."""
        if config not in self._towns:
            self._towns[config] = build_grid_town(config)
        return self._towns[config]

    def renderer_for(self, config: GridTownConfig) -> Renderer:
        """The (cached) renderer for a configuration."""
        if config not in self._renderers:
            self._renderers[config] = Renderer(
                self.town_for(config), self.camera, self.texture_resolution
            )
        return self._renderers[config]

    def build_episode(self, scenario: Scenario) -> EpisodeHandles:
        """A fresh world + sensor suite realising ``scenario``.

        The ego spawns at the mission start; NPC traffic and pedestrians
        are placed from the scenario seed with a clearance zone around the
        ego.
        """
        town = self.town_for(scenario.town_config)
        world = World(town, weather=scenario.weather, seed=scenario.seed)
        world.spawn_ego(scenario.mission.start)
        world.populate(
            scenario.n_npc_vehicles,
            scenario.n_pedestrians,
            keep_clear=scenario.mission.start.position,
        )
        suite = SensorSuite(
            camera=Camera(self.renderer_for(scenario.town_config)),
            gps=GPS(noise_std=self.gps_noise_std),
            speedometer=Speedometer(),
            lidar=Lidar2D(n_rays=19, fov_deg=120.0) if self.with_lidar else None,
        )
        return EpisodeHandles(world=world, sensors=suite, town=town)
