"""Scenario realisation: turning a :class:`Scenario` into a live world.

Towns and renderers are expensive to build (texture rasterisation) but
immutable, so they are cached *per process* in a :class:`SceneCache` keyed
by configuration fingerprints — the same hash-the-config idiom
:func:`~repro.core.campaign.episode_fingerprint` uses for checkpoint
identities.  :class:`SimulationBuilder` stamps out fresh
:class:`~repro.sim.world.World` instances per episode on top of the cached
scene state, which is what makes warm-started campaign workers cheap: the
first episode in a process rasterises the town texture, every later
episode (same campaign or the next one) reuses it.  Campaign code, dataset
collection and the examples all go through this one path, which keeps
episode construction identical everywhere.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass

from .actors import NPCVehicle, make_behavior
from .render import CameraModel, Renderer
from .scenario import Scenario
from .sensors import GPS, Camera, Lidar2D, SensorSuite, Speedometer
from .town import GridTownConfig, LaneRef, ProceduralTownConfig, Town, build_town
from .world import World

__all__ = [
    "SimulationBuilder",
    "EpisodeHandles",
    "SceneCache",
    "scene_fingerprint",
    "process_scene_cache",
]


def scene_fingerprint(*parts) -> str:
    """A short stable hash of the immutable scene configuration.

    Town and camera configs are frozen dataclasses with value-complete
    ``repr``s, so hashing the joint repr gives a process-portable cache
    key — the same machinery checkpoint identities use for fault configs.
    """
    return hashlib.sha1(repr(parts).encode()).hexdigest()[:12]


class SceneCache:
    """Process-local cache of towns and renderers, keyed by fingerprint.

    Bounded LRU: an entry pins a rasterised town texture (megabytes), so
    sweeps over many distinct town configs recycle the oldest scenes
    instead of accumulating them.  Scene state is deterministic given its
    configuration, therefore safe to share between every builder (and
    campaign) in the process; it never travels across process boundaries —
    workers rebuild lazily on first use and keep the result warm.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("cache needs at least one slot")
        self.max_entries = max_entries
        self._towns: OrderedDict[str, Town] = OrderedDict()
        self._renderers: OrderedDict[str, Renderer] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _get(self, store: OrderedDict, key: str, build):
        with self._lock:
            if key in store:
                store.move_to_end(key)
                self.hits += 1
                return store[key]
        # Build outside the lock (texture rasterisation is slow); a rare
        # duplicate build in a racing thread is benign — last one wins.
        value = build()
        with self._lock:
            store[key] = value
            store.move_to_end(key)
            while len(store) > self.max_entries:
                store.popitem(last=False)
            self.misses += 1
        return value

    def town(self, config: GridTownConfig | ProceduralTownConfig) -> Town:
        """The (cached) town for a configuration (grid or procedural)."""
        return self._get(
            self._towns, scene_fingerprint(config), lambda: build_town(config)
        )

    def renderer(
        self,
        config: GridTownConfig | ProceduralTownConfig,
        camera: CameraModel,
        texture_resolution: float,
    ) -> Renderer:
        """The (cached) renderer for a town + camera configuration."""
        return self._get(
            self._renderers,
            scene_fingerprint(config, camera, texture_resolution),
            lambda: Renderer(self.town(config), camera, texture_resolution),
        )

    def clear(self) -> None:
        """Drop every cached scene (tests / memory pressure)."""
        with self._lock:
            self._towns.clear()
            self._renderers.clear()

    def stats(self) -> dict[str, int]:
        """Cache effectiveness counters."""
        with self._lock:
            return {
                "towns": len(self._towns),
                "renderers": len(self._renderers),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The per-process scene cache every builder shares by default.
_PROCESS_CACHE = SceneCache()


def process_scene_cache() -> SceneCache:
    """This process's shared :class:`SceneCache`."""
    return _PROCESS_CACHE


@dataclass
class EpisodeHandles:
    """Everything an episode runner needs for one scenario."""

    world: World
    sensors: SensorSuite
    town: Town


class SimulationBuilder:
    """Builds worlds for scenarios on top of the process scene cache.

    ``scene_cache`` defaults to the process-wide cache; pass a private
    :class:`SceneCache` to isolate (tests that mutate towns, say).
    Builders are picklable and cheap to ship to worker processes: the
    cache never pickles with them (each process re-derives scene state
    from the configs and keeps it warm across episodes and campaigns).
    """

    def __init__(
        self,
        camera: CameraModel | None = None,
        texture_resolution: float = 0.25,
        with_lidar: bool = True,
        gps_noise_std: float = 0.4,
        scene_cache: SceneCache | None = None,
    ):
        self.camera = camera or CameraModel()
        self.texture_resolution = texture_resolution
        self.with_lidar = with_lidar
        self.gps_noise_std = gps_noise_std
        self._scene_cache = scene_cache

    @property
    def scene_cache(self) -> SceneCache:
        """The cache in use (private if one was injected, else process-wide)."""
        return self._scene_cache if self._scene_cache is not None else _PROCESS_CACHE

    def __getstate__(self) -> dict:
        # Scene state never crosses process boundaries: it is deterministic
        # from the configs, and shipping rasterised textures through pickle
        # is exactly the per-run cost the cache exists to avoid.
        state = dict(self.__dict__)
        state["_scene_cache"] = None
        return state

    def config_signature(self) -> str:
        """Stable identity for checkpoint fingerprints.

        Covers every episode-visible construction parameter (camera
        intrinsics, texture resolution, sensor suite shape, GPS noise) —
        but not the scene cache, which never changes what gets built.
        See :func:`repro.core.campaign.episode_fingerprint`.
        """
        return (
            f"SimulationBuilder(camera={self.camera!r}, "
            f"texture_resolution={self.texture_resolution!r}, "
            f"with_lidar={self.with_lidar!r}, "
            f"gps_noise_std={self.gps_noise_std!r})"
        )

    def to_config(self) -> dict:
        """JSON-serialisable construction parameters (spec files).

        Numeric fields coerce to canonical JSON types so equal builders
        emit identical JSON (spec hashes are content hashes).
        """
        camera = asdict(self.camera)
        for key in ("fov_deg", "mount_height", "pitch_deg", "forward_offset", "max_depth"):
            camera[key] = float(camera[key])
        camera["width"] = int(camera["width"])
        camera["height"] = int(camera["height"])
        return {
            "camera": camera,
            "texture_resolution": float(self.texture_resolution),
            "with_lidar": bool(self.with_lidar),
            "gps_noise_std": float(self.gps_noise_std),
        }

    @classmethod
    def from_config(cls, config: dict) -> "SimulationBuilder":
        """Rebuild a builder from :meth:`to_config` output."""
        if not isinstance(config, dict):
            raise TypeError(
                f"builder config must be an object, got {type(config).__name__}"
            )
        unknown = set(config) - {
            "camera",
            "texture_resolution",
            "with_lidar",
            "gps_noise_std",
        }
        if unknown:
            raise ValueError(f"builder config has unknown keys {sorted(unknown)}")
        camera_cfg = config.get("camera")
        camera = CameraModel(**camera_cfg) if camera_cfg is not None else None
        return cls(
            camera=camera,
            texture_resolution=config.get("texture_resolution", 0.25),
            with_lidar=config.get("with_lidar", True),
            gps_noise_std=config.get("gps_noise_std", 0.4),
        )

    def town_for(self, config: GridTownConfig | ProceduralTownConfig) -> Town:
        """The (cached) town for a configuration."""
        return self.scene_cache.town(config)

    def renderer_for(self, config: GridTownConfig | ProceduralTownConfig) -> Renderer:
        """The (cached) renderer for a configuration."""
        return self.scene_cache.renderer(config, self.camera, self.texture_resolution)

    def build_episode(self, scenario: Scenario) -> EpisodeHandles:
        """A fresh world + sensor suite realising ``scenario``.

        The ego spawns at the mission start; scripted NPCs
        (``scenario.npcs``) spawn at their exact lane stations (consuming
        no episode RNG, so adding one never perturbs the rest of the
        world); background NPC traffic and pedestrians are then placed
        from the scenario seed with a clearance zone around the ego.
        """
        town = self.town_for(scenario.town_config)
        world = World(town, weather=scenario.weather, seed=scenario.seed)
        world.spawn_ego(scenario.mission.start)
        for npc in scenario.npcs:
            ref = LaneRef(npc.road_id, npc.direction)
            try:
                lane = town.lanes[ref]
            except KeyError:
                raise ValueError(
                    f"scenario {scenario.name!r}: scripted npc references lane "
                    f"{ref} absent from town {town.name!r}"
                ) from None
            world.add_actor(
                NPCVehicle(
                    lane,
                    min(npc.station, lane.length),
                    town,
                    target_speed=npc.target_speed,
                    behavior=make_behavior(npc.behavior),
                )
            )
        world.populate(
            scenario.n_npc_vehicles,
            scenario.n_pedestrians,
            keep_clear=scenario.mission.start.position,
        )
        suite = SensorSuite(
            camera=Camera(self.renderer_for(scenario.town_config)),
            gps=GPS(noise_std=self.gps_noise_std),
            speedometer=Speedometer(),
            lidar=Lidar2D(n_rays=19, fov_deg=120.0) if self.with_lidar else None,
        )
        return EpisodeHandles(world=world, sensors=suite, town=town)
