"""Benchmark task tiers, after the CARLA driving benchmark.

The agent the paper uses (Codevilla et al.) was evaluated on CARLA's four
benchmark tasks of increasing difficulty; AVFI's campaigns run "across
multiple test scenarios" of the same kind.  This module provides the tiers
as reproducible scenario suites:

* ``STRAIGHT`` — short missions with no junction turns and empty streets;
* ``ONE_TURN`` — one junction manoeuvre, empty streets;
* ``NAVIGATION`` — full multi-junction routes, empty streets;
* ``DYNAMIC_NAVIGATION`` — full routes with NPC vehicles and pedestrians.

Tiers matter for fault-injection studies: a fault that is benign on
STRAIGHT (occlusion while lane following) can be fatal on
DYNAMIC_NAVIGATION (the occluded region hides a pedestrian).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .geometry import Transform
from .scenario import Mission, Scenario, derive_scenario_seed, generate_missions
from .town import GridTownConfig, Town, build_grid_town

__all__ = ["Task", "TaskSpec", "TASK_SPECS", "make_task_scenarios"]


class Task(str, Enum):
    """CARLA-benchmark-style task tiers."""

    STRAIGHT = "straight"
    ONE_TURN = "one_turn"
    NAVIGATION = "navigation"
    DYNAMIC_NAVIGATION = "dynamic_navigation"


@dataclass(frozen=True)
class TaskSpec:
    """Workload parameters of one task tier."""

    min_distance: float
    max_distance: float
    max_turns: int | None  # None = unconstrained
    n_npc_vehicles: int
    n_pedestrians: int


TASK_SPECS: dict[Task, TaskSpec] = {
    Task.STRAIGHT: TaskSpec(60.0, 180.0, 0, 0, 0),
    Task.ONE_TURN: TaskSpec(90.0, 250.0, 1, 0, 0),
    Task.NAVIGATION: TaskSpec(150.0, 450.0, None, 0, 0),
    Task.DYNAMIC_NAVIGATION: TaskSpec(150.0, 450.0, None, 3, 4),
}


def _route_turn_count(route) -> int:
    """Number of *turning* manoeuvres (LEFT/RIGHT) on a planned route.

    Crossing a junction straight ahead is not a turn — CARLA's "Straight"
    task routes through intersections without turning, and ours match.
    """
    from ..agent.planner import Command

    turning = {Command.LEFT, Command.RIGHT}
    turns = 0
    previously_turning = False
    for command in route.commands:
        is_turning = command in turning
        if is_turning and not previously_turning:
            turns += 1
        previously_turning = is_turning
    return turns


def make_task_scenarios(
    task: Task | str,
    n: int,
    seed: int = 0,
    town_config: GridTownConfig | None = None,
    weather: str = "ClearNoon",
) -> list[Scenario]:
    """Build ``n`` scenarios of one task tier.

    Route constraints (turn counts, reachability, accurate time limits)
    are enforced with the route planner, so a STRAIGHT mission really has
    zero junction manoeuvres and a ONE_TURN mission exactly one.
    """
    from ..agent.planner import PlanningError, RoutePlanner

    task = Task(task)
    spec = TASK_SPECS[task]
    cfg = town_config or GridTownConfig()
    town = build_grid_town(cfg)
    planner = RoutePlanner(town)

    def route_length(start: Transform, goal) -> float | None:
        try:
            route = planner.plan(start.position, goal, start_yaw=start.yaw)
        except PlanningError:
            return None
        if spec.max_turns is not None and _route_turn_count(route) != spec.max_turns:
            return None
        return route.length

    rng = np.random.default_rng(seed)
    missions = generate_missions(
        town,
        n,
        rng,
        min_distance=spec.min_distance,
        max_distance=spec.max_distance,
        route_length_fn=route_length,
    )
    return [
        Scenario(
            mission=m,
            town_config=cfg,
            weather=weather,
            n_npc_vehicles=spec.n_npc_vehicles,
            n_pedestrians=spec.n_pedestrians,
            seed=derive_scenario_seed(seed, i),
            name=f"{task.value}-{i}",
        )
        for i, m in enumerate(missions)
    ]
