"""Traffic-violation detection.

The paper's resilience metrics count *events*: "traffic violations
(including lane violations, driving on the curb, and collisions with
pedestrians, cars, and other objects on the streets)".  Detectors here
translate continuous world state into discrete debounced events:

* a **lane violation** starts when the ego centre leaves its own lane's
  paint-to-paint span while on pavement outside a junction (this covers
  both crossing the centre line into oncoming traffic and hugging the
  road edge);
* a **curb violation** starts when the ego centre leaves the drivable
  surface entirely (sidewalk or off-road);
* a **collision** starts when the ego's bounding box first overlaps
  another actor's or a building's, classified by what was hit.

A condition that stays true for many frames is one violation; it must
clear for ``clear_frames`` before a new event of the same type can start.
However, a *sustained* surface violation re-triggers every
``retrigger_m`` metres driven — driving half a kilometre down the sidewalk
is not one curb violation, it is one per stretch of sidewalk consumed.
Collisions additionally track per-object contact, so hitting two distinct
pedestrians is two accidents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from .geometry import OrientedBox, Vec2

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .actors import Vehicle
    from .world import World

__all__ = ["ViolationType", "ViolationEvent", "ViolationMonitor", "ACCIDENT_TYPES"]


class ViolationType(str, Enum):
    """Categories of traffic violations AVFI counts."""

    LANE = "lane"
    CURB = "curb"
    COLLISION_VEHICLE = "collision_vehicle"
    COLLISION_PEDESTRIAN = "collision_pedestrian"
    COLLISION_STATIC = "collision_static"


#: Violation types that count as *accidents* for the APK metric.
ACCIDENT_TYPES = frozenset(
    {
        ViolationType.COLLISION_VEHICLE,
        ViolationType.COLLISION_PEDESTRIAN,
        ViolationType.COLLISION_STATIC,
    }
)


@dataclass
class ViolationEvent:
    """One detected violation.

    ``start_frame`` is when the condition first held; ``end_frame`` is set
    when it clears (or stays ``None`` if the episode ends mid-violation).
    """

    type: ViolationType
    start_frame: int
    position: tuple[float, float]
    details: dict = field(default_factory=dict)
    end_frame: Optional[int] = None

    @property
    def is_accident(self) -> bool:
        """Whether this event counts towards Accidents-Per-KM."""
        return self.type in ACCIDENT_TYPES


class _DebouncedCondition:
    """Turns a per-frame boolean into debounced open/close events."""

    def __init__(self, clear_frames: int):
        self.clear_frames = clear_frames
        self.active = False
        self._clear_count = 0

    def reset(self) -> None:
        self.active = False
        self._clear_count = 0

    def update(self, condition: bool) -> str:
        """Advance one frame.  Returns 'start', 'end' or 'none'."""
        if condition:
            self._clear_count = 0
            if not self.active:
                self.active = True
                return "start"
            return "none"
        if self.active:
            self._clear_count += 1
            if self._clear_count >= self.clear_frames:
                self.active = False
                self._clear_count = 0
                return "end"
        return "none"


class ViolationMonitor:
    """Tracks all violation events for the ego vehicle over an episode.

    Call :meth:`step` once per frame after the world has ticked.  Newly
    started events are returned (and retained in :attr:`events`).
    """

    def __init__(self, clear_frames: int = 8, retrigger_m: float = 25.0):
        if retrigger_m <= 0:
            raise ValueError("retrigger_m must be positive")
        self.clear_frames = clear_frames
        self.retrigger_m = retrigger_m
        self.events: list[ViolationEvent] = []
        self._lane = _DebouncedCondition(clear_frames)
        self._curb = _DebouncedCondition(clear_frames)
        self._contacts: dict[object, ViolationEvent] = {}
        self._open: dict[ViolationType, ViolationEvent] = {}
        self._open_odometer: dict[ViolationType, float] = {}

    def reset(self) -> None:
        """Clear all state between episodes."""
        self.events.clear()
        self._lane.reset()
        self._curb.reset()
        self._contacts.clear()
        self._open.clear()
        self._open_odometer.clear()

    # ------------------------------------------------------------------
    def _update_surface_conditions(
        self, world: "World", ego: "Vehicle", frame: int
    ) -> list[ViolationEvent]:
        new_events: list[ViolationEvent] = []
        loc = world.town.locate(ego.position, yaw_hint=ego.yaw)
        on_pavement = loc.surface.name == "ROAD"
        off_surface = not on_pavement
        lane_bad = on_pavement and not loc.in_intersection and loc.off_lane

        for detector, vtype, condition, details in (
            (self._lane, ViolationType.LANE, lane_bad, {"lateral": loc.lateral}),
            (self._curb, ViolationType.CURB, off_surface, {"surface": loc.surface.name}),
        ):
            edge = detector.update(condition)
            if edge == "start":
                event = ViolationEvent(
                    vtype, frame, (ego.position.x, ego.position.y), dict(details)
                )
                self._open[vtype] = event
                self._open_odometer[vtype] = ego.odometer_m
                self.events.append(event)
                new_events.append(event)
            elif edge == "end" and vtype in self._open:
                self._open.pop(vtype).end_frame = frame
                self._open_odometer.pop(vtype, None)
            elif vtype in self._open and condition:
                # Sustained violation: another event per retrigger_m driven.
                if ego.odometer_m - self._open_odometer[vtype] >= self.retrigger_m:
                    self._open[vtype].end_frame = frame
                    event = ViolationEvent(
                        vtype,
                        frame,
                        (ego.position.x, ego.position.y),
                        {**details, "retriggered": True},
                    )
                    self._open[vtype] = event
                    self._open_odometer[vtype] = ego.odometer_m
                    self.events.append(event)
                    new_events.append(event)
        return new_events

    def _update_collisions(
        self, world: "World", ego: "Vehicle", frame: int
    ) -> list[ViolationEvent]:
        new_events: list[ViolationEvent] = []
        ego_box = ego.bounding_box()
        ego_x, ego_y = ego_box.center.x, ego_box.center.y
        ego_radius = math.hypot(ego_box.half_length, ego_box.half_width)
        current: set[object] = set()

        def check(key: object, box: OrientedBox, vtype: ViolationType, detail: dict) -> None:
            # Circumradius prescreen: boxes whose centres are farther
            # apart than their circumradii sum cannot overlap, and the
            # SAT test below would prove exactly that — skip it.
            reach = ego_radius + math.hypot(box.half_length, box.half_width)
            if math.hypot(box.center.x - ego_x, box.center.y - ego_y) > reach:
                return
            if not ego_box.overlaps(box):
                return
            current.add(key)
            if key in self._contacts:
                return
            event = ViolationEvent(vtype, frame, (ego.position.x, ego.position.y), detail)
            self._contacts[key] = event
            self.events.append(event)
            new_events.append(event)

        for actor in world.actors:
            if actor.id == ego.id or not actor.alive:
                continue
            vtype = (
                ViolationType.COLLISION_PEDESTRIAN
                if actor.role == "pedestrian"
                else ViolationType.COLLISION_VEHICLE
            )
            check(("actor", actor.id), actor.bounding_box(), vtype, {"other": actor.role})
        for i, building in enumerate(world.town.buildings):
            check(("building", i), building.box, ViolationType.COLLISION_STATIC, {"other": "building"})

        # Close contacts that separated this frame.
        for key in list(self._contacts):
            if key not in current:
                self._contacts.pop(key).end_frame = frame
        return new_events

    # ------------------------------------------------------------------
    def step(self, world: "World", ego: "Vehicle", frame: int) -> list[ViolationEvent]:
        """Process one frame; returns events that *started* this frame."""
        new_events = self._update_surface_conditions(world, ego, frame)
        new_events += self._update_collisions(world, ego, frame)
        return new_events

    # ------------------------------------------------------------------
    def count(self, vtype: ViolationType | None = None) -> int:
        """Total events, optionally filtered by type."""
        if vtype is None:
            return len(self.events)
        return sum(1 for e in self.events if e.type == vtype)

    def accidents(self) -> list[ViolationEvent]:
        """All events that count as accidents."""
        return [e for e in self.events if e.is_accident]
