"""The world: town + actors + weather advancing in lockstep.

:class:`World` is the single mutable simulation container.  It owns the
frame counter, the episode RNG, the actor list and the active weather, and
advances everything one fixed ``dt`` per :meth:`tick` (15 FPS by default,
matching the paper's CARLA configuration).

Spawning helpers place NPC traffic on lanes and pedestrians on sidewalks
deterministically from the episode RNG, keeping a clearance zone around the
ego spawn so campaigns do not start inside a collision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .actors import Actor, NPCVehicle, Pedestrian, Vehicle
from .geometry import Transform, Vec2
from .physics import VehicleSpec
from .town import Town
from .weather import Weather, get_preset

__all__ = ["World", "DEFAULT_FPS"]

DEFAULT_FPS = 15.0


class World:
    """All mutable simulation state for one episode."""

    def __init__(
        self,
        town: Town,
        weather: Weather | str = "ClearNoon",
        seed: int | None = 0,
        fps: float = DEFAULT_FPS,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.town = town
        self.weather = get_preset(weather) if isinstance(weather, str) else weather
        self.fps = fps
        self.dt = 1.0 / fps
        self.rng = np.random.default_rng(seed)
        self.frame = 0
        self.actors: list[Actor] = []
        self.ego: Vehicle | None = None

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Elapsed simulation time in seconds."""
        return self.frame * self.dt

    def tick(self) -> int:
        """Advance the world one frame; returns the new frame index."""
        self.frame += 1
        for actor in self.actors:
            if actor.alive:
                actor.tick(self, self.dt, self.rng)
        return self.frame

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn_ego(self, transform: Transform, spec: VehicleSpec | None = None) -> Vehicle:
        """Create the ego vehicle at ``transform`` (exactly one per world)."""
        if self.ego is not None:
            raise RuntimeError("world already has an ego vehicle")
        ego = Vehicle(transform, spec)
        self.ego = ego
        self.actors.append(ego)
        return ego

    def add_actor(self, actor: Actor) -> Actor:
        """Register an externally built actor."""
        self.actors.append(actor)
        return actor

    def populate(
        self,
        n_vehicles: int,
        n_pedestrians: int,
        keep_clear: Vec2 | None = None,
        clear_radius: float = 20.0,
        npc_speed: float = 6.0,
    ) -> None:
        """Scatter NPC traffic over the town using the episode RNG.

        Spawn candidates inside ``clear_radius`` of ``keep_clear`` (the ego
        start, normally) are skipped, as are candidates too close to an
        already placed vehicle.
        """
        candidates = self.town.spawn_points(spacing=14.0)
        order = self.rng.permutation(len(candidates))
        placed = 0
        for idx in order:
            if placed >= n_vehicles:
                break
            wp = candidates[int(idx)]
            if keep_clear is not None and wp.position.distance_to(keep_clear) < clear_radius:
                continue
            if any(
                a.position.distance_to(wp.position) < 10.0
                for a in self.actors
                if isinstance(a, Vehicle)
            ):
                continue
            speed = npc_speed * float(self.rng.uniform(0.8, 1.2))
            self.actors.append(NPCVehicle(wp.lane, wp.station, self.town, target_speed=speed))
            placed += 1

        for _ in range(n_pedestrians):
            lane_refs = list(self.town.lanes)
            lane = self.town.lanes[lane_refs[int(self.rng.integers(len(lane_refs)))]]
            station = float(self.rng.uniform(0.0, lane.length))
            base = lane.centerline.point_at(station)
            heading = lane.centerline.heading_at(station)
            side = 1.0 if self.rng.random() < 0.5 else -1.0
            offset = lane.road.half_width + self.town.sidewalk_width / 2.0
            pos = base + Vec2.from_heading(heading + math.pi / 2.0) * (side * offset)
            if keep_clear is not None and pos.distance_to(keep_clear) < clear_radius / 2.0:
                continue
            self.actors.append(Pedestrian(Transform(pos, heading), self.town))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def other_actors(self, exclude_id: int) -> list[Actor]:
        """Alive actors other than ``exclude_id`` (the per-sensor actor set)."""
        return [a for a in self.actors if a.id != exclude_id and a.alive]

    def actors_near(self, position: Vec2, radius: float, exclude_id: int | None = None) -> list[Actor]:
        """Alive actors within ``radius`` metres of ``position``."""
        return [
            a
            for a in self.actors
            if a.alive
            and a.id != exclude_id
            and a.position.distance_to(position) <= radius
        ]

    def set_weather(self, weather: Weather | str) -> None:
        """Switch the active weather (world-measurement fault target)."""
        self.weather = get_preset(weather) if isinstance(weather, str) else weather
