"""Vehicle dynamics: controls, state and the kinematic bicycle model.

The simulator advances every vehicle with a kinematic bicycle model — the
standard fidelity level for urban-speed AV work (and what CARLA's own
``VehicleControl`` semantics reduce to at low speed).  Longitudinal dynamics
include engine/brake limits, quadratic aerodynamic drag and rolling
resistance so speed control behaves like a real car rather than an
integrator.

All quantities are SI: metres, seconds, radians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .geometry import Transform, Vec2, wrap_angle

__all__ = ["VehicleControl", "VehicleState", "VehicleSpec", "BicycleModel"]


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(hi, max(lo, value))


def _safe(v: float, lo: float, hi: float, default: float) -> float:
    """``v`` clamped to ``[lo, hi]``; ``default`` for non-finite input."""
    if not math.isfinite(v):
        return default
    return _clamp(float(v), lo, hi)


@dataclass(frozen=True)
class VehicleControl:
    """A single actuation command, mirroring CARLA's control message.

    ``steer`` is normalised to ``[-1, 1]`` (negative = left in CARLA; here
    positive steers *left* to match the CCW yaw convention), ``throttle``
    and ``brake`` to ``[0, 1]``.  Values outside the range are accepted and
    clamped at application time — fault injectors deliberately produce
    out-of-range or non-finite commands and the server must survive them.
    """

    steer: float = 0.0
    throttle: float = 0.0
    brake: float = 0.0
    reverse: bool = False
    hand_brake: bool = False

    def clamped(self) -> "VehicleControl":
        """A sanitised copy safe to feed to the physics integrator.

        Non-finite entries degrade to neutral values (a real drive-by-wire
        stack would reject NaNs at the bus level).
        """
        s, t, b = self.steer, self.throttle, self.brake
        if (
            -1.0 <= s <= 1.0
            and 0.0 <= t <= 1.0
            and 0.0 <= b <= 1.0
            and isinstance(self.reverse, bool)
            and isinstance(self.hand_brake, bool)
        ):
            # Already sane (the overwhelmingly common case): this control
            # is immutable, so it can stand in for its own clamped copy.
            return self
        safe = _safe
        return VehicleControl(
            steer=safe(self.steer, -1.0, 1.0, 0.0),
            throttle=safe(self.throttle, 0.0, 1.0, 0.0),
            brake=safe(self.brake, 0.0, 1.0, 0.0),
            reverse=bool(self.reverse),
            hand_brake=bool(self.hand_brake),
        )


@dataclass(frozen=True)
class VehicleState:
    """Pose and speed of a vehicle on the ground plane."""

    x: float
    y: float
    yaw: float
    speed: float = 0.0  # signed, m/s; negative when reversing

    @property
    def position(self) -> Vec2:
        """Position as a :class:`Vec2`."""
        return Vec2(self.x, self.y)

    @property
    def transform(self) -> Transform:
        """Body-frame pose."""
        return Transform(Vec2(self.x, self.y), self.yaw)

    def velocity(self) -> Vec2:
        """World-frame velocity vector."""
        return Vec2.from_heading(self.yaw, self.speed)


@dataclass(frozen=True)
class VehicleSpec:
    """Physical parameters of a vehicle.

    Defaults approximate a mid-size sedan; pedestrian "vehicles" never use
    this model.  ``max_steer_angle`` is the road-wheel angle at full steering
    input.
    """

    length: float = 4.5
    width: float = 2.0
    height: float = 1.6
    wheelbase: float = 2.7
    max_steer_angle: float = math.radians(35.0)
    max_accel: float = 3.5  # m/s^2 at full throttle, low speed
    max_brake_decel: float = 8.0  # m/s^2 at full brake
    drag_coeff: float = 0.0024  # quadratic drag, 1/m (gives ~38 m/s top speed)
    rolling_decel: float = 0.12  # m/s^2 constant rolling resistance
    max_speed: float = 30.0  # hard cap, m/s
    max_reverse_speed: float = 5.0

    def half_extents(self) -> tuple[float, float]:
        """``(half_length, half_width)`` for collision boxes."""
        return self.length / 2.0, self.width / 2.0


class BicycleModel:
    """Kinematic bicycle integrator for one vehicle spec.

    The model is deterministic and stateless: ``step`` maps
    ``(state, control, dt)`` to the next state, which keeps replay and
    fault-injection experiments exactly reproducible.
    """

    def __init__(self, spec: VehicleSpec | None = None):
        self.spec = spec or VehicleSpec()

    def step(self, state: VehicleState, control: VehicleControl, dt: float) -> VehicleState:
        """Advance ``state`` by ``dt`` seconds under ``control``.

        The control is sanitised via :meth:`VehicleControl.clamped` first, so
        corrupted commands from fault injection cannot produce NaN states.
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        spec = self.spec
        ctl = control.clamped()

        speed = state.speed
        if ctl.hand_brake:
            accel = -math.copysign(spec.max_brake_decel, speed) if abs(speed) > 1e-3 else 0.0
        else:
            drive = ctl.throttle * spec.max_accel
            if ctl.reverse:
                drive = -drive
            brake = ctl.brake * spec.max_brake_decel
            # Brakes oppose motion; at standstill they simply hold the car.
            if abs(speed) > 1e-3:
                brake_term = -math.copysign(brake, speed)
                resist = -math.copysign(
                    spec.rolling_decel + spec.drag_coeff * speed * speed, speed
                )
            else:
                brake_term = 0.0
                resist = 0.0
                if brake > 0.0 and abs(drive) <= brake:
                    drive = 0.0
            accel = drive + brake_term + resist

        new_speed = speed + accel * dt
        # Brakes and resistance never push the car backwards through zero.
        if speed > 0.0 and new_speed < 0.0 and not ctl.reverse:
            new_speed = 0.0
        if speed < 0.0 and new_speed > 0.0 and ctl.reverse:
            new_speed = 0.0
        new_speed = _clamp(new_speed, -spec.max_reverse_speed, spec.max_speed)

        steer_angle = ctl.steer * spec.max_steer_angle
        yaw_rate = new_speed / spec.wheelbase * math.tan(steer_angle)
        new_yaw = wrap_angle(state.yaw + yaw_rate * dt)
        # Integrate position along the average heading for second-order accuracy.
        mid_yaw = state.yaw + 0.5 * yaw_rate * dt
        nx = state.x + new_speed * math.cos(mid_yaw) * dt
        ny = state.y + new_speed * math.sin(mid_yaw) * dt
        return VehicleState(nx, ny, new_yaw, new_speed)

    def stopping_distance(self, speed: float, reaction_time: float = 0.3) -> float:
        """Distance needed to stop from ``speed`` with full braking."""
        v = abs(speed)
        return v * reaction_time + v * v / (2.0 * self.spec.max_brake_decel)

    def teleport(self, state: VehicleState, transform: Transform, speed: float = 0.0) -> VehicleState:
        """A new state at ``transform`` (used for spawning/respawning)."""
        return replace(
            state, x=transform.position.x, y=transform.position.y, yaw=transform.yaw, speed=speed
        )
