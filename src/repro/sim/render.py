"""Software perspective camera: the CARLA/Unreal rendering substitute.

The camera renders what a forward-facing RGB sensor on the hood sees:

1. *Ground pass* — every pixel below the horizon is intersected with the
   ground plane (inverse perspective mapping, precomputed once per camera)
   and coloured by sampling a rasterised town texture containing road
   surfaces, curbs, grass and painted lane markings.
2. *Billboard pass* — buildings and actors project to shaded screen-space
   rectangles, painted far-to-near so occlusion works.
3. *Atmosphere pass* — distance fog, rain streaks and global brightness
   from the active :class:`~repro.sim.weather.Weather`.

The result is a ``uint8`` RGB array with the semantic content the
imitation-learning agent trains on (lane position, road edges, obstacles),
which is exactly the content AVFI's camera fault models corrupt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .geometry import Transform, Vec2
from .town import Building, SurfaceType, Town
from .weather import Weather

__all__ = ["CameraModel", "TownTexture", "Renderer", "SURFACE_COLORS", "SemanticClass"]


class SemanticClass:
    """Per-pixel class ids of the semantic camera (CARLA-style labels)."""

    SKY = 0
    OFFROAD = 1
    CURB = 2
    ROAD = 3
    BUILDING = 4
    VEHICLE = 5
    PEDESTRIAN = 6

    #: SurfaceType value -> semantic id for the ground pass.
    FROM_SURFACE = {0: OFFROAD, 1: CURB, 2: ROAD}

SURFACE_COLORS: dict[int, tuple[int, int, int]] = {
    int(SurfaceType.OFFROAD): (96, 140, 72),  # grass
    int(SurfaceType.CURB): (168, 168, 168),  # pavement
    int(SurfaceType.ROAD): (58, 58, 64),  # asphalt
}
SKY_TOP = np.array([110, 150, 215], dtype=np.float32)
SKY_BOTTOM = np.array([190, 205, 230], dtype=np.float32)
FOG_COLOR = np.array([185, 190, 198], dtype=np.float32)


@dataclass(frozen=True)
class CameraModel:
    """Intrinsics and mounting of the hood camera.

    ``pitch_deg`` is negative when looking down.  ``forward_offset`` places
    the camera ahead of the vehicle centre (on the hood).  ``max_depth``
    bounds the ground pass; everything further renders as horizon haze.
    """

    width: int = 96
    height: int = 64
    fov_deg: float = 100.0
    mount_height: float = 1.5
    pitch_deg: float = -8.0
    forward_offset: float = 1.0
    max_depth: float = 90.0

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise ValueError("camera resolution too small")
        if not 20.0 <= self.fov_deg <= 160.0:
            raise ValueError("fov must be within [20, 160] degrees")

    @property
    def focal_px(self) -> float:
        """Focal length in pixels (square pixels assumed)."""
        return (self.width / 2.0) / math.tan(math.radians(self.fov_deg) / 2.0)


class TownTexture:
    """Rasterised ground-truth texture of a town.

    Built once per town at ``resolution`` metres per texel: surface classes
    are colour-mapped, then lane markings and building footprints are
    stamped on top.  Sampling is a clipped nearest-neighbour lookup,
    vectorised over pixel batches.
    """

    def __init__(self, town: Town, resolution: float = 0.25, margin: float = 12.0):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        xmin, ymin, xmax, ymax = town.bounds
        self.x0 = xmin - margin
        self.y0 = ymin - margin
        self.nx = int(math.ceil((xmax - xmin + 2 * margin) / resolution))
        self.ny = int(math.ceil((ymax - ymin + 2 * margin) / resolution))
        xs = self.x0 + (np.arange(self.nx) + 0.5) * resolution
        ys = self.y0 + (np.arange(self.ny) + 0.5) * resolution
        gx, gy = np.meshgrid(xs, ys)  # shape (ny, nx)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        classes = town.classify_points(pts).reshape(self.ny, self.nx)
        tex = np.zeros((self.ny, self.nx, 3), dtype=np.uint8)
        for cls, color in SURFACE_COLORS.items():
            tex[classes == cls] = color
        self._stamp_markings(tex, town)
        self._stamp_buildings(tex, town.buildings)
        self.texture = tex
        # Surface-class raster for the semantic camera (markings stay ROAD).
        self.classes = classes
        # Gather-friendly variants: flat row-major tables so a pixel
        # lookup is a single ``np.take`` over precomputed flat indices
        # instead of advanced indexing with two index arrays.  The f32
        # copy feeds the renderer's ground pass directly (uint8 -> f32
        # casts are exact, so pre-casting changes no values).
        self._tex_flat = tex.reshape(-1, 3)
        self._tex_f32 = self._tex_flat.astype(np.float32)
        self._classes_flat = classes.reshape(-1)
        self._offroad_u8 = np.array(
            SURFACE_COLORS[int(SurfaceType.OFFROAD)], dtype=np.uint8
        )
        self._offroad_f32 = self._offroad_u8.astype(np.float32)
        # 1/resolution, used only for power-of-two resolutions: both the
        # inverse and the multiply are then pure exponent shifts, so
        # ``x * inv`` is bit-identical to ``x / resolution`` for every x.
        self._inv_res = 1.0 / resolution if math.frexp(resolution)[0] == 0.5 else None

    def _stamp_markings(self, tex: np.ndarray, town: Town) -> None:
        for stripe in town.markings():
            pts = stripe.polyline.resampled(self.resolution * 0.75).points
            half_w_tex = max(1, int(round(stripe.width / 2.0 / self.resolution)))
            dash_period = 6.0  # metres: 3 on, 3 off
            dist = 0.0
            prev = pts[0]
            for p in pts:
                dist += p.distance_to(prev)
                prev = p
                if stripe.dashed and (dist % dash_period) > dash_period / 2.0:
                    continue
                row = int((p.y - self.y0) / self.resolution)
                col = int((p.x - self.x0) / self.resolution)
                r0 = max(0, row - half_w_tex + 1)
                r1 = min(self.ny, row + half_w_tex)
                c0 = max(0, col - half_w_tex + 1)
                c1 = min(self.nx, col + half_w_tex)
                if r0 < r1 and c0 < c1:
                    tex[r0:r1, c0:c1] = stripe.color

    def _stamp_buildings(self, tex: np.ndarray, buildings: list[Building]) -> None:
        for b in buildings:
            corners = b.box.corners()
            xs = [c.x for c in corners]
            ys = [c.y for c in corners]
            c0 = max(0, int((min(xs) - self.x0) / self.resolution))
            c1 = min(self.nx, int((max(xs) - self.x0) / self.resolution) + 1)
            r0 = max(0, int((min(ys) - self.y0) / self.resolution))
            r1 = min(self.ny, int((max(ys) - self.y0) / self.resolution) + 1)
            if r0 < r1 and c0 < c1:
                footprint = tuple(int(ch * 0.55) for ch in b.color)
                tex[r0:r1, c0:c1] = footprint

    def _texel_rc(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._inv_res is not None:
            col = ((x - self.x0) * self._inv_res).astype(np.int64)
            row = ((y - self.y0) * self._inv_res).astype(np.int64)
        else:
            col = ((x - self.x0) / self.resolution).astype(np.int64)
            row = ((y - self.y0) / self.resolution).astype(np.int64)
        return row, col

    def sample(self, xy: np.ndarray) -> np.ndarray:
        """Nearest-neighbour colour lookup for world points ``(N, 2)``."""
        return self.sample_xy(xy[:, 0], xy[:, 1])

    def _flat_gather_idx(self, row: np.ndarray, col: np.ndarray):
        """Flat texel indices plus the out-of-map mask (``None`` if all in).

        Out-of-range rows/cols are clipped in place — callers overwrite
        the masked entries with the off-map colour/class, so the clipped
        gather value never survives.
        """
        # Unsigned views fold each axis's two range checks into one
        # comparison (negative int64 indices reinterpret as huge uint64).
        inside = (row.view(np.uint64) < self.ny) & (col.view(np.uint64) < self.nx)
        if inside.all():
            return row * self.nx + col, None
        np.clip(row, 0, self.ny - 1, out=row)
        np.clip(col, 0, self.nx - 1, out=col)
        return row * self.nx + col, ~inside

    def sample_xy(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """:meth:`sample` on separate coordinate arrays (no stacking)."""
        row, col = self._texel_rc(x, y)
        flat, outside = self._flat_gather_idx(row, col)
        out = np.take(self._tex_flat, flat, axis=0)
        if outside is not None:
            out[outside] = self._offroad_u8
        return out

    def sample_f32_xy(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """:meth:`sample_xy` as float32 (the renderer's working dtype).

        Gathers from a pre-cast f32 table; identical values to
        ``sample_xy(x, y).astype(np.float32)``.
        """
        row, col = self._texel_rc(x, y)
        flat, outside = self._flat_gather_idx(row, col)
        out = np.take(self._tex_f32, flat, axis=0)
        if outside is not None:
            out[outside] = self._offroad_f32
        return out

    def sample_classes(self, xy: np.ndarray) -> np.ndarray:
        """Surface-class lookup for world points ``(N, 2)`` (uint8)."""
        return self.sample_classes_xy(xy[:, 0], xy[:, 1])

    def sample_classes_xy(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """:meth:`sample_classes` on separate coordinate arrays."""
        row, col = self._texel_rc(x, y)
        flat, outside = self._flat_gather_idx(row, col)
        out = np.take(self._classes_flat, flat)
        if outside is not None:
            out[outside] = int(SurfaceType.OFFROAD)
        return out


class Renderer:
    """Renders camera frames for one town + camera configuration."""

    def __init__(self, town: Town, camera: CameraModel | None = None, texture_resolution: float = 0.25):
        self.town = town
        self.camera = camera or CameraModel()
        self.texture = TownTexture(town, texture_resolution)
        self._precompute_rays()
        self._sky = self._make_sky()
        self._precompute_static()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _precompute_rays(self) -> None:
        cam = self.camera
        f = cam.focal_px
        cx = (cam.width - 1) / 2.0
        cy = (cam.height - 1) / 2.0
        u, v = np.meshgrid(np.arange(cam.width), np.arange(cam.height))
        # Camera-frame ray directions: X forward, Y left, Z up.
        dir_y = -(u - cx) / f
        dir_z = -(v - cy) / f
        theta = math.radians(cam.pitch_deg)
        c, s = math.cos(theta), math.sin(theta)
        # Rotate camera frame to vehicle frame (pitch about the Y/left axis).
        vx = c * 1.0 - s * dir_z
        vz = s * 1.0 + c * dir_z
        vy = dir_y
        descending = vz < -1e-6
        # Rays at/above the horizon get t=0 so the arrays stay finite; the
        # ground mask excludes them anyway.
        t = np.where(descending, cam.mount_height / np.where(descending, -vz, 1.0), 0.0)
        ground_x = cam.forward_offset + t * vx
        ground_y = t * vy
        depth = t * np.hypot(vx, vy)
        self._ground_mask = descending & (depth <= cam.max_depth) & (ground_x > 0.0)
        self._ground_local = np.stack([ground_x, ground_y], axis=-1)
        self._ground_depth = depth
        self._descending = descending

    def _make_sky(self) -> np.ndarray:
        cam = self.camera
        rows = np.linspace(0.0, 1.0, cam.height, dtype=np.float32)[:, None, None]
        sky = SKY_TOP[None, None, :] * (1.0 - rows) + SKY_BOTTOM[None, None, :] * rows
        return np.broadcast_to(sky, (cam.height, cam.width, 3)).copy()

    def _precompute_static(self) -> None:
        """Per-renderer state reused by every frame.

        The ground pass only touches pixels under the horizon, so the
        precomputed local ground points/depths are stored masked (flat
        index + compact arrays).  Below-horizon pixels past max depth
        always render as haze regardless of pose, so the haze is baked
        into the per-frame base image.  Buildings are static: their
        centres, extents, heights and colours stack once into arrays the
        billboard pass reuses.
        """
        mask = self._ground_mask
        self._ground_flat = np.flatnonzero(mask.ravel())
        self._ground_x = self._ground_local[..., 0][mask]
        self._ground_y = self._ground_local[..., 1][mask]
        self._ground_depth_m = self._ground_depth[mask]
        self._ground_depth_m32 = self._ground_depth_m.astype(np.float32)
        # Ground pixels are stored in row-major order, and the bottom of
        # the image is typically a solid all-ground block: write that part
        # with one contiguous block assignment and scatter only the ragged
        # rows near the horizon.
        # First row index v such that every row v..h-1 is fully masked.
        h = self.camera.height
        v = h
        while v > 0 and mask[v - 1].all():
            v -= 1
        self._ground_block_row = v
        n_block = (h - v) * self.camera.width
        self._ground_scatter_idx = self._ground_flat[: len(self._ground_flat) - n_block]
        self._ground_split = len(self._ground_flat) - n_block
        haze_mask = (
            (~mask) & self._descending & (self._ground_depth >= self.camera.max_depth)
        )
        base = self._sky.copy()
        base[haze_mask] = FOG_COLOR
        self._frame_base = base
        #: Per-weather cache of ground-pass fog alphas (f32, masked shape).
        self._ground_alpha_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        #: Episode-stacked variant, keyed on a batch's fog-density tuple.
        self._ground_alpha_multi_cache: dict[
            tuple[float, ...], tuple[np.ndarray, np.ndarray]
        ] = {}

        buildings = self.town.buildings
        self._bb_cx = np.array([b.box.center.x for b in buildings], dtype=np.float64)
        self._bb_cy = np.array([b.box.center.y for b in buildings], dtype=np.float64)
        self._bb_hl = np.array([b.box.half_length for b in buildings], dtype=np.float64)
        self._bb_hw = np.array([b.box.half_width for b in buildings], dtype=np.float64)
        self._bb_height = np.array([b.height for b in buildings], dtype=np.float64)
        self._bb_colors = np.array(
            [b.color for b in buildings], dtype=np.float32
        ).reshape(len(buildings), 3)
        # Stacked (7, n_b) building block for _stack_drawables: rows are
        # [cx, cy, crel, srel, hl, hw, height]; the crel/srel rows are
        # frame-dependent placeholders overwritten per frame.
        self._bb_block = np.stack(
            [
                self._bb_cx,
                self._bb_cy,
                np.zeros(len(buildings)),
                np.zeros(len(buildings)),
                self._bb_hl,
                self._bb_hw,
                self._bb_height,
            ]
        )

        # SurfaceType id -> SemanticClass id lookup for the ground pass.
        lut = np.zeros(max(SemanticClass.FROM_SURFACE) + 1, dtype=np.uint8)
        for surf, sem_id in SemanticClass.FROM_SURFACE.items():
            lut[surf] = sem_id
        self._sem_lut = lut

    def _ground_alpha(self, fog_density: float) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(FOG_COLOR * alpha, 1 - alpha)`` f32 ground fog terms.

        Identical to the per-frame computation it replaces (clip to the
        weather's visibility, optional fog exponent, f32 cast); the result
        depends only on ``fog_density``, so one entry per weather serves
        the whole episode.
        """
        cached = self._ground_alpha_cache.get(fog_density)
        if cached is None:
            visibility = self.camera.max_depth * (1.0 - 0.85 * fog_density)
            alpha = np.clip(self._ground_depth_m / visibility, 0.0, 1.0)[
                :, None
            ].astype(np.float32)
            if fog_density > 0.0:
                alpha = alpha ** max(0.5, (1.0 - fog_density))
            cached = (FOG_COLOR[None, :] * alpha, 1.0 - alpha)
            # Renderers live for the whole worker process (SceneCache), so
            # a fog-density sweep must not accumulate arrays without
            # bound; evicting the oldest entry only costs a recompute.
            if len(self._ground_alpha_cache) >= 16:
                self._ground_alpha_cache.pop(next(iter(self._ground_alpha_cache)))
            self._ground_alpha_cache[fog_density] = cached
        return cached

    def _ground_alpha_multi(
        self, fog_densities: tuple[float, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Episode-stacked ``(fog_term, 1 - alpha)`` for a batch of weathers.

        ``np.stack`` of the per-episode :meth:`_ground_alpha` pairs along
        a new leading axis — cached on the fog-density tuple because a
        multiplexed slot's weathers are fixed for the whole slot, so every
        frame after the first reuses the stacked arrays.
        """
        cached = self._ground_alpha_multi_cache.get(fog_densities)
        if cached is None:
            pairs = [self._ground_alpha(f) for f in fog_densities]
            cached = (
                np.stack([p[0] for p in pairs]),
                np.stack([p[1] for p in pairs]),
            )
            if len(self._ground_alpha_multi_cache) >= 8:
                self._ground_alpha_multi_cache.pop(
                    next(iter(self._ground_alpha_multi_cache))
                )
            self._ground_alpha_multi_cache[fog_densities] = cached
        return cached

    # ------------------------------------------------------------------
    # Projection helpers (billboard pass)
    # ------------------------------------------------------------------
    def _project(self, pts_vehicle: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project vehicle-frame 3-D points to pixel coordinates.

        ``pts_vehicle`` has shape ``(N, 3)`` (x forward, y left, z up,
        relative to the vehicle origin on the ground).  Returns
        ``(u, v, depth)``; points behind the camera get non-positive depth.
        """
        cam = self.camera
        q = pts_vehicle.astype(np.float64).copy()
        q[:, 0] -= cam.forward_offset
        q[:, 2] -= cam.mount_height
        theta = math.radians(cam.pitch_deg)
        c, s = math.cos(theta), math.sin(theta)
        xc = q[:, 0] * c + q[:, 2] * s
        zc = -q[:, 0] * s + q[:, 2] * c
        yc = q[:, 1]
        f = cam.focal_px
        cx = (cam.width - 1) / 2.0
        cy = (cam.height - 1) / 2.0
        with np.errstate(divide="ignore", invalid="ignore"):
            u = cx - f * yc / xc
            v = cy - f * zc / xc
        return u, v, xc

    def _stack_drawables(self, ego_yaw: float, actors: list | None):
        """Stack static buildings + dynamic actors into flat arrays.

        Returns ``(cx, cy, crel, srel, hl, hw, height, actor_list)`` with
        one entry per drawable, buildings first (matching the build order
        of the former per-drawable loop).  ``crel``/``srel`` hold
        ``cos/sin(yaw - ego_yaw)``, computed with ``math`` trig so the
        values are bit-identical to the scalar path they replace —
        buildings always billboard at yaw 0, so they share one pair.
        """
        actors = list(actors or [])
        n_b = len(self._bb_cx)
        rel0 = 0.0 - ego_yaw
        c0, s0 = math.cos(rel0), math.sin(rel0)
        if not actors:
            return (
                self._bb_cx,
                self._bb_cy,
                np.full(n_b, c0),
                np.full(n_b, s0),
                self._bb_hl,
                self._bb_hw,
                self._bb_height,
                actors,
            )
        # One (7, n) buffer: the static building block copies in as a 2-D
        # slab (crel/srel columns refreshed per frame), actors append as
        # columns; the returned per-field rows are contiguous views.
        n = n_b + len(actors)
        buf = np.empty((7, n))
        buf[:, :n_b] = self._bb_block
        buf[2, :n_b] = c0
        buf[3, :n_b] = s0
        for i, a in enumerate(actors, start=n_b):
            pos = a.transform.position
            rel = a.yaw - ego_yaw
            buf[:, i] = (
                pos.x,
                pos.y,
                math.cos(rel),
                math.sin(rel),
                a.half_length,
                a.half_width,
                a.height,
            )
        return (*buf, actors)

    _CORNER_SX = np.array([1.0, 1.0, -1.0, -1.0])
    _CORNER_SY = np.array([1.0, -1.0, 1.0, -1.0])

    def _billboard_geometry(self, ego: Transform, cx, cy, crel, srel, hl, hw, height):
        """Cull, project and depth-sort all drawables in one batch.

        Returns ``(order, valid, u0, u1, v0, v1, dist)``: the far-to-near
        paint order over *all* drawables, a visibility mask, the unclipped
        float pixel bounds of each billboard and the ego-frame distance
        used for shading/fog/depth.  Every comparison and arithmetic step
        mirrors the retired per-drawable loop exactly (stable descending
        sort on the world-frame centre distance included), so painted
        frames stay bit-identical.
        """
        cam = self.camera
        ex, ey = ego.position.x, ego.position.y
        dx = cx - ex
        dy = cy - ey
        c2, s2 = math.cos(-ego.yaw), math.sin(-ego.yaw)
        lx = c2 * dx - s2 * dy
        ly = s2 * dx + c2 * dy
        # One pass of math.hypot for both the world-frame sort key and the
        # ego-frame distance (np.hypot is not bit-identical to math.hypot,
        # so these stay scalar).
        hyp = math.hypot
        sort_key = []
        dist_l = []
        for a, b, lxi, lyi in zip(dx.tolist(), dy.tolist(), lx.tolist(), ly.tolist()):
            sort_key.append(hyp(a, b))
            dist_l.append(hyp(lxi, lyi))
        order = sorted(range(len(sort_key)), key=sort_key.__getitem__, reverse=True)
        dist = np.array(dist_l)
        keep = (lx >= 0.5) & (dist <= cam.max_depth)

        # Corner offsets in the ego frame; sign * (extent * trig) matches
        # the scalar ``dx * half_length * c`` exactly (dx, dy are +-1).
        a = (hl * crel)[:, None]
        b = (hw * srel)[:, None]
        e = (hl * srel)[:, None]
        f = (hw * crel)[:, None]
        px = lx[:, None] + (self._CORNER_SX[None, :] * a - self._CORNER_SY[None, :] * b)
        py = ly[:, None] + (self._CORNER_SX[None, :] * e + self._CORNER_SY[None, :] * f)
        # Project the 8 box corners (bottom ring z=0, top ring z=height).
        # This is _project() unrolled over one (n, 8) batch: x/y corners
        # are shared between the rings, so only the pitched z term differs.
        # Same expressions as the scalar path, same bits.
        n = len(lx)
        theta = math.radians(cam.pitch_deg)
        cth, sth = math.cos(theta), math.sin(theta)
        foc = cam.focal_px
        ccx = (cam.width - 1) / 2.0
        ccy = (cam.height - 1) / 2.0
        qx = np.empty((n, 8))
        qx[:, :4] = px
        qx[:, 4:] = px
        np.subtract(qx, cam.forward_offset, out=qx)
        py8 = np.empty((n, 8))
        py8[:, :4] = py
        py8[:, 4:] = py
        qz = np.empty((n, 8))
        qz[:, :4] = 0.0 - cam.mount_height  # bottom ring sits on the ground
        qz[:, 4:] = (height - cam.mount_height)[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            xc = qx * cth + qz * sth
            zc = qx * (-sth) + qz * cth
            u = ccx - foc * py8 / xc
            v = ccy - foc * zc / xc
        valid = keep & ~(xc < 0.2).any(1)
        # Culled drawables may hold inf/nan bounds; the paint loop never
        # reads them (``valid`` gates first).  floor/ceil/int clipping
        # happen per painted drawable in the paint loop.
        return (
            order,
            valid.tolist(),
            u.min(1).tolist(),
            u.max(1).tolist(),
            v.min(1).tolist(),
            v.max(1).tolist(),
            dist,
        )

    def _billboard_geometry_multi(self, egos, actor_lists):
        """:meth:`_billboard_geometry` over many episodes in one dispatch.

        ``egos``/``actor_lists`` pair one ego :class:`Transform` and one
        actor list per episode.  The per-episode :meth:`_stack_drawables`
        pass is fused in: all drawables write straight into one
        concatenated ``(7, total)`` row buffer (static building block plus
        per-actor columns, buildings first — the same build order and
        ``math`` trig as the scalar path) with per-row ego scalars
        expanded along their episode's segment.  Every arithmetic step is
        then the same elementwise op on the same operands as the
        single-episode call, so the sliced per-episode results are
        bit-identical.  Sorting stays per episode (paint order never
        crosses episodes).  Returns one
        ``(order, valid, u0, u1, v0, v1, dist)`` tuple per episode.
        """
        cam = self.camera
        n_b = len(self._bb_cx)
        counts = [n_b + len(al) for al in actor_lists]
        total = sum(counts)
        if total == 0:
            return [([], [], [], [], [], [], np.empty(0)) for _ in egos]
        buf = np.empty((7, total))
        ex = np.empty(total)
        ey = np.empty(total)
        c2 = np.empty(total)
        s2 = np.empty(total)
        offsets = [0]
        pos = 0
        for ego, actor_list, n in zip(egos, actor_lists, counts):
            nxt = pos + n
            nb_end = pos + n_b
            buf[:, pos:nb_end] = self._bb_block
            rel0 = 0.0 - ego.yaw
            buf[2, pos:nb_end] = math.cos(rel0)
            buf[3, pos:nb_end] = math.sin(rel0)
            for i, a in enumerate(actor_list, start=nb_end):
                apos = a.transform.position
                rel = a.yaw - ego.yaw
                buf[:, i] = (
                    apos.x,
                    apos.y,
                    math.cos(rel),
                    math.sin(rel),
                    a.half_length,
                    a.half_width,
                    a.height,
                )
            ex[pos:nxt] = ego.position.x
            ey[pos:nxt] = ego.position.y
            c2[pos:nxt] = math.cos(-ego.yaw)
            s2[pos:nxt] = math.sin(-ego.yaw)
            pos = nxt
            offsets.append(pos)
        cx, cy, crel, srel, hl, hw, height = buf
        dx = cx - ex
        dy = cy - ey
        lx = c2 * dx - s2 * dy
        ly = s2 * dx + c2 * dy
        hyp = math.hypot
        sort_key = [hyp(a, b) for a, b in zip(dx.tolist(), dy.tolist())]
        dist = np.array([hyp(a, b) for a, b in zip(lx.tolist(), ly.tolist())])
        keep = (lx >= 0.5) & (dist <= cam.max_depth)

        a = (hl * crel)[:, None]
        b = (hw * srel)[:, None]
        e = (hl * srel)[:, None]
        f = (hw * crel)[:, None]
        px = lx[:, None] + (self._CORNER_SX[None, :] * a - self._CORNER_SY[None, :] * b)
        py = ly[:, None] + (self._CORNER_SX[None, :] * e + self._CORNER_SY[None, :] * f)
        theta = math.radians(cam.pitch_deg)
        cth, sth = math.cos(theta), math.sin(theta)
        foc = cam.focal_px
        ccx = (cam.width - 1) / 2.0
        ccy = (cam.height - 1) / 2.0
        qx = np.empty((total, 8))
        qx[:, :4] = px
        qx[:, 4:] = px
        np.subtract(qx, cam.forward_offset, out=qx)
        py8 = np.empty((total, 8))
        py8[:, :4] = py
        py8[:, 4:] = py
        qz = np.empty((total, 8))
        qz[:, :4] = 0.0 - cam.mount_height
        qz[:, 4:] = (height - cam.mount_height)[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            xc = qx * cth + qz * sth
            zc = qx * (-sth) + qz * cth
            u = ccx - foc * py8 / xc
            v = ccy - foc * zc / xc
        valid = keep & ~(xc < 0.2).any(1)
        u0 = u.min(1)
        u1 = u.max(1)
        v0 = v.min(1)
        v1 = v.max(1)
        out = []
        for idx in range(len(egos)):
            lo, hi = offsets[idx], offsets[idx + 1]
            seg_key = sort_key[lo:hi]
            order = sorted(range(hi - lo), key=seg_key.__getitem__, reverse=True)
            out.append(
                (
                    order,
                    valid[lo:hi].tolist(),
                    u0[lo:hi].tolist(),
                    u1[lo:hi].tolist(),
                    v0[lo:hi].tolist(),
                    v1[lo:hi].tolist(),
                    dist[lo:hi],
                )
            )
        return out

    def _paint_billboards(self, target, order, valid, u0, u1, v0, v1, values) -> None:
        """Paint far-to-near; ``values[i]`` fills drawable ``i``'s rect."""
        wmax = self.camera.width - 1
        hmax = self.camera.height - 1
        floor, ceil = math.floor, math.ceil
        for i in order:
            if not valid[i]:
                continue
            a0 = max(0, floor(u0[i]))
            a1 = min(wmax, ceil(u1[i]))
            b0 = max(0, floor(v0[i]))
            b1 = min(hmax, ceil(v1[i]))
            if a0 > a1 or b0 > b1:
                continue
            target[b0 : b1 + 1, a0 : a1 + 1] = values[i]

    def _billboard_colors(
        self, actor_list: list, dist: np.ndarray, weather: Weather
    ) -> np.ndarray:
        """Shaded + fogged uint8 fill colours for all drawables.

        Buildings first, then actors, matching :meth:`_stack_drawables`
        order.  Shared by :meth:`render` and :meth:`render_batch` so both
        paths produce the same bytes.
        """
        cam = self.camera
        if actor_list:
            cols = np.concatenate(
                [
                    self._bb_colors,
                    np.array([a.color for a in actor_list], dtype=np.float32),
                ]
            )
        else:
            cols = self._bb_colors
        shade = 1.0 - 0.35 * np.minimum(dist / cam.max_depth, 1.0)
        cols = cols * shade.astype(np.float32)[:, None]
        visibility = cam.max_depth * (1.0 - 0.85 * weather.fog_density)
        fog_a = np.clip(dist / visibility, 0.0, 1.0)
        if weather.fog_density > 0.0:
            fog_a = fog_a ** max(0.5, 1.0 - weather.fog_density)
        cols = (
            cols * (1.0 - fog_a).astype(np.float32)[:, None]
            + FOG_COLOR[None, :] * fog_a.astype(np.float32)[:, None]
        )
        return cols.astype(np.uint8)

    def _billboard_colors_multi(
        self,
        actor_lists: list[list],
        dists: list[np.ndarray],
        weathers: list[Weather],
    ) -> list[np.ndarray]:
        """:meth:`_billboard_colors` for many episodes in one dispatch.

        All episodes' drawable rows concatenate into one colour/distance
        row set with per-episode scalars (fog visibility) expanded along
        their segment, so the shading/fog ufuncs run once instead of once
        per episode.  Every step is the same elementwise op on the same
        operands as the per-episode call — except the fog-gamma power,
        which keeps a *scalar* exponent per episode segment: NumPy's
        scalar-exponent fast paths (e.g. ``** 0.5`` -> sqrt) are not
        guaranteed bit-identical to an array-exponent ``pow``.
        """
        cam = self.camera
        pieces = []
        offsets = [0]
        vis = np.empty(len(dists))
        counts = np.empty(len(dists), dtype=np.int64)
        pos = 0
        for i, (actor_list, dist, weather) in enumerate(
            zip(actor_lists, dists, weathers)
        ):
            pieces.append(self._bb_colors)
            if actor_list:
                pieces.append(
                    np.array([a.color for a in actor_list], dtype=np.float32)
                )
            vis[i] = cam.max_depth * (1.0 - 0.85 * weather.fog_density)
            counts[i] = len(dist)
            pos += len(dist)
            offsets.append(pos)
        if pos == 0:
            return [np.empty((0, 3), dtype=np.uint8) for _ in dists]
        cols = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
        dist = np.concatenate(dists) if len(dists) > 1 else dists[0]
        shade = 1.0 - 0.35 * np.minimum(dist / cam.max_depth, 1.0)
        cols = cols * shade.astype(np.float32)[:, None]
        fog_a = np.clip(dist / np.repeat(vis, counts), 0.0, 1.0)
        for i, weather in enumerate(weathers):
            if weather.fog_density > 0.0:
                lo, hi = offsets[i], offsets[i + 1]
                fog_a[lo:hi] = fog_a[lo:hi] ** max(0.5, 1.0 - weather.fog_density)
        cols = (
            cols * (1.0 - fog_a).astype(np.float32)[:, None]
            + FOG_COLOR[None, :] * fog_a.astype(np.float32)[:, None]
        )
        u8 = cols.astype(np.uint8)
        return [u8[offsets[i] : offsets[i + 1]] for i in range(len(dists))]

    def _apply_atmosphere(
        self,
        img: np.ndarray,
        weather: Weather,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Rain streaks + brightness; returns the final uint8 frame.

        The streak update is a single fancy-indexed pass; pixels covered
        by k overlapping streaks get the darken/brighten transform applied
        k times, which is exactly what the retired per-streak loop
        produced.  Shared by :meth:`render` and :meth:`render_batch` so the
        per-episode rng draws happen in the same order with the same
        arguments either way.
        """
        cam = self.camera
        if weather.rain_intensity > 0.0 and rng is not None:
            n = int(weather.rain_intensity * cam.width * cam.height * 0.01)
            if n > 0:
                us = rng.integers(0, cam.width, n)
                vs = rng.integers(0, max(1, cam.height - 4), n)
                lengths = rng.integers(2, 5, n)
                offsets = np.arange(int(lengths.sum())) - np.repeat(
                    np.cumsum(lengths) - lengths, lengths
                )
                rows = np.repeat(vs, lengths) + offsets
                flat = rows * cam.width + np.repeat(us, lengths)
                cells, counts = np.unique(flat, return_counts=True)
                pixels = img.reshape(-1, 3)
                vals = pixels[cells]
                vals = np.minimum(vals * 0.7 + 90.0, 255.0)
                for k in range(2, int(counts.max()) + 1):
                    again = counts >= k
                    vals[again] = np.minimum(vals[again] * 0.7 + 90.0, 255.0)
                pixels[cells] = vals
        if weather.brightness != 1.0:
            img = img * weather.brightness
        if weather.brightness <= 1.0:
            # Every source (sky gradient, convex fog blends, uint8-cast
            # billboards, 255-clamped rain) is already in [0, 255] and a
            # brightness <= 1 keeps it there: the clip is an identity.
            return img.astype(np.uint8)
        return np.clip(img, 0.0, 255.0).astype(np.uint8)

    def _scatter_ground(self, img: np.ndarray, colors: np.ndarray) -> None:
        """Write fogged ground colours into a frame (scatter + block)."""
        cam = self.camera
        split = self._ground_split
        if split:
            img.reshape(-1, 3)[self._ground_scatter_idx] = colors[:split]
        if self._ground_block_row < cam.height:
            img[self._ground_block_row :] = colors[split:].reshape(-1, cam.width, 3)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def render(
        self,
        ego: Transform,
        actors: list | None = None,
        weather: Weather | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render one RGB frame from the ego vehicle's hood camera.

        ``actors`` is any iterable of objects with ``position``, ``yaw``,
        ``half_length``, ``half_width``, ``height`` and ``color`` attributes
        (the ego itself should not be included).  ``rng`` drives rain streak
        placement only.
        """
        weather = weather or Weather("ClearNoon")
        cam = self.camera
        # Sky gradient with the constant beyond-max-depth haze pre-baked.
        img = self._frame_base.copy()

        # Ground pass: transform precomputed local ground points to world
        # (masked up front — pixels at/above the horizon never sample).
        cos_y, sin_y = math.cos(ego.yaw), math.sin(ego.yaw)
        wx = ego.position.x + self._ground_x * cos_y - self._ground_y * sin_y
        wy = ego.position.y + self._ground_x * sin_y + self._ground_y * cos_y
        colors = self.texture.sample_f32_xy(wx, wy)

        # Distance fog over the ground pass (per-weather cached terms,
        # applied in place: colors * (1 - alpha) + FOG_COLOR * alpha).
        fog_term, one_minus_alpha = self._ground_alpha(weather.fog_density)
        np.multiply(colors, one_minus_alpha, out=colors)
        np.add(colors, fog_term, out=colors)
        self._scatter_ground(img, colors)

        # Billboard pass: one batched cull/project/sort, then far-to-near
        # slab paints.
        cx, cy, crel, srel, hl, hw, height, actor_list = self._stack_drawables(
            ego.yaw, actors
        )
        if len(cx):
            order, valid, u0, u1, v0, v1, dist = self._billboard_geometry(
                ego, cx, cy, crel, srel, hl, hw, height
            )
            self._paint_billboards(
                img,
                order,
                valid,
                u0,
                u1,
                v0,
                v1,
                self._billboard_colors(actor_list, dist, weather),
            )

        # Atmosphere: rain streaks and brightness.
        return self._apply_atmosphere(img, weather, rng)

    def render_batch(
        self,
        views: list[
            tuple[Transform, list | None, Weather | None, np.random.Generator | None]
        ],
    ) -> list[np.ndarray]:
        """Render many episodes' frames through this renderer in one batch.

        ``views`` holds one ``(ego, actors, weather, rng)`` tuple per
        episode; the return list pairs with it.  Ground-pass world
        coordinates and the billboard geometry pipeline run over all
        episodes stacked into ``(E, .)`` slabs — every arithmetic step is
        the same elementwise op as :meth:`render` on the same operands,
        and everything order-sensitive (paint order, rain rng draws)
        stays per episode, so each output is bit-identical to the serial
        call.  Used by the episode multiplexer for same-scene-fingerprint
        groups (one shared renderer via the scene cache).
        """
        if not views:
            return []
        cam = self.camera
        n_eps = len(views)
        # Batched ground pass: (E, N) world coordinates in one dispatch,
        # one flat texture gather for all episodes.
        exs = np.empty((n_eps, 1))
        eys = np.empty((n_eps, 1))
        coss = np.empty((n_eps, 1))
        sins = np.empty((n_eps, 1))
        for i, (ego, _, _, _) in enumerate(views):
            exs[i, 0] = ego.position.x
            eys[i, 0] = ego.position.y
            coss[i, 0] = math.cos(ego.yaw)
            sins[i, 0] = math.sin(ego.yaw)
        wx = exs + self._ground_x[None, :] * coss - self._ground_y[None, :] * sins
        wy = eys + self._ground_x[None, :] * sins + self._ground_y[None, :] * coss
        n_ground = len(self._ground_x)
        colors = self.texture.sample_f32_xy(wx.ravel(), wy.ravel()).reshape(
            n_eps, n_ground, 3
        )
        # Ground fog: per-episode cached (fog_term, 1 - alpha) pairs
        # stacked along the episode axis and applied in one pass.
        weathers = [w or Weather("ClearNoon") for (_, _, w, _) in views]
        fog_term, one_minus = self._ground_alpha_multi(
            tuple(w.fog_density for w in weathers)
        )
        np.multiply(colors, one_minus, out=colors)
        np.add(colors, fog_term, out=colors)

        # Billboard geometry for all episodes in one concatenated dispatch
        # (the per-episode drawable stacking is fused into the multi call).
        actor_lists = [list(actors or []) for (_, actors, _, _) in views]
        geoms = self._billboard_geometry_multi(
            [ego for (ego, _, _, _) in views], actor_lists
        )
        painting = [i for i in range(n_eps) if len(geoms[i][6])]
        fills = dict(
            zip(
                painting,
                self._billboard_colors_multi(
                    [actor_lists[i] for i in painting],
                    [geoms[i][6] for i in painting],
                    [weathers[i] for i in painting],
                ),
            )
        )

        out: list[np.ndarray] = []
        for i, (_, _, weather, rng) in enumerate(views):
            weather = weathers[i]
            img = self._frame_base.copy()
            self._scatter_ground(img, colors[i])
            order, valid, u0, u1, v0, v1, dist = geoms[i]
            if i in fills:
                self._paint_billboards(img, order, valid, u0, u1, v0, v1, fills[i])
            out.append(self._apply_atmosphere(img, weather, rng))
        return out

    # ------------------------------------------------------------------
    # Ground-truth layers (semantic segmentation + depth)
    # ------------------------------------------------------------------
    def render_semantic_depth(
        self, ego: Transform, actors: list | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth semantic and depth images for the current view.

        Returns ``(semantic, depth)``: a ``uint8`` class map using
        :class:`SemanticClass` ids and a ``float32`` depth map in metres
        (``inf`` for sky).  These are the CARLA-style auxiliary camera
        outputs — not consumed by the IL-CNN, but the natural substrate
        for perception-level fault studies and for labelling datasets.
        """
        cam = self.camera
        semantic = np.full((cam.height, cam.width), SemanticClass.SKY, dtype=np.uint8)
        depth = np.full((cam.height, cam.width), np.inf, dtype=np.float32)

        # Ground pass over the precomputed below-horizon pixels.
        cos_y, sin_y = math.cos(ego.yaw), math.sin(ego.yaw)
        wx = ego.position.x + self._ground_x * cos_y - self._ground_y * sin_y
        wy = ego.position.y + self._ground_x * sin_y + self._ground_y * cos_y
        surface = self.texture.sample_classes_xy(wx, wy)
        semantic.reshape(-1)[self._ground_flat] = self._sem_lut[surface]
        depth.reshape(-1)[self._ground_flat] = self._ground_depth_m32

        # Billboard pass shares the batched geometry with render(); only
        # the painted payload differs (class ids + centre distances).
        cx, cy, crel, srel, hl, hw, height, actor_list = self._stack_drawables(
            ego.yaw, actors
        )
        if len(cx):
            order, valid, u0, u1, v0, v1, dist = self._billboard_geometry(
                ego, cx, cy, crel, srel, hl, hw, height
            )
            classes = [SemanticClass.BUILDING] * len(self._bb_cx) + [
                SemanticClass.PEDESTRIAN
                if getattr(a, "role", "") == "pedestrian"
                else SemanticClass.VEHICLE
                for a in actor_list
            ]
            self._paint_billboards(semantic, order, valid, u0, u1, v0, v1, classes)
            self._paint_billboards(depth, order, valid, u0, u1, v0, v1, dist.tolist())
        return semantic, depth
