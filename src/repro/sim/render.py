"""Software perspective camera: the CARLA/Unreal rendering substitute.

The camera renders what a forward-facing RGB sensor on the hood sees:

1. *Ground pass* — every pixel below the horizon is intersected with the
   ground plane (inverse perspective mapping, precomputed once per camera)
   and coloured by sampling a rasterised town texture containing road
   surfaces, curbs, grass and painted lane markings.
2. *Billboard pass* — buildings and actors project to shaded screen-space
   rectangles, painted far-to-near so occlusion works.
3. *Atmosphere pass* — distance fog, rain streaks and global brightness
   from the active :class:`~repro.sim.weather.Weather`.

The result is a ``uint8`` RGB array with the semantic content the
imitation-learning agent trains on (lane position, road edges, obstacles),
which is exactly the content AVFI's camera fault models corrupt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .geometry import Transform, Vec2
from .town import Building, SurfaceType, Town
from .weather import Weather

__all__ = ["CameraModel", "TownTexture", "Renderer", "SURFACE_COLORS", "SemanticClass"]


class SemanticClass:
    """Per-pixel class ids of the semantic camera (CARLA-style labels)."""

    SKY = 0
    OFFROAD = 1
    CURB = 2
    ROAD = 3
    BUILDING = 4
    VEHICLE = 5
    PEDESTRIAN = 6

    #: SurfaceType value -> semantic id for the ground pass.
    FROM_SURFACE = {0: OFFROAD, 1: CURB, 2: ROAD}

SURFACE_COLORS: dict[int, tuple[int, int, int]] = {
    int(SurfaceType.OFFROAD): (96, 140, 72),  # grass
    int(SurfaceType.CURB): (168, 168, 168),  # pavement
    int(SurfaceType.ROAD): (58, 58, 64),  # asphalt
}
SKY_TOP = np.array([110, 150, 215], dtype=np.float32)
SKY_BOTTOM = np.array([190, 205, 230], dtype=np.float32)
FOG_COLOR = np.array([185, 190, 198], dtype=np.float32)


@dataclass(frozen=True)
class CameraModel:
    """Intrinsics and mounting of the hood camera.

    ``pitch_deg`` is negative when looking down.  ``forward_offset`` places
    the camera ahead of the vehicle centre (on the hood).  ``max_depth``
    bounds the ground pass; everything further renders as horizon haze.
    """

    width: int = 96
    height: int = 64
    fov_deg: float = 100.0
    mount_height: float = 1.5
    pitch_deg: float = -8.0
    forward_offset: float = 1.0
    max_depth: float = 90.0

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise ValueError("camera resolution too small")
        if not 20.0 <= self.fov_deg <= 160.0:
            raise ValueError("fov must be within [20, 160] degrees")

    @property
    def focal_px(self) -> float:
        """Focal length in pixels (square pixels assumed)."""
        return (self.width / 2.0) / math.tan(math.radians(self.fov_deg) / 2.0)


class TownTexture:
    """Rasterised ground-truth texture of a town.

    Built once per town at ``resolution`` metres per texel: surface classes
    are colour-mapped, then lane markings and building footprints are
    stamped on top.  Sampling is a clipped nearest-neighbour lookup,
    vectorised over pixel batches.
    """

    def __init__(self, town: Town, resolution: float = 0.25, margin: float = 12.0):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        xmin, ymin, xmax, ymax = town.bounds
        self.x0 = xmin - margin
        self.y0 = ymin - margin
        self.nx = int(math.ceil((xmax - xmin + 2 * margin) / resolution))
        self.ny = int(math.ceil((ymax - ymin + 2 * margin) / resolution))
        xs = self.x0 + (np.arange(self.nx) + 0.5) * resolution
        ys = self.y0 + (np.arange(self.ny) + 0.5) * resolution
        gx, gy = np.meshgrid(xs, ys)  # shape (ny, nx)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        classes = town.classify_points(pts).reshape(self.ny, self.nx)
        tex = np.zeros((self.ny, self.nx, 3), dtype=np.uint8)
        for cls, color in SURFACE_COLORS.items():
            tex[classes == cls] = color
        self._stamp_markings(tex, town)
        self._stamp_buildings(tex, town.buildings)
        self.texture = tex
        # Surface-class raster for the semantic camera (markings stay ROAD).
        self.classes = classes

    def _world_to_texel(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        col = ((xy[..., 0] - self.x0) / self.resolution).astype(np.int64)
        row = ((xy[..., 1] - self.y0) / self.resolution).astype(np.int64)
        return row, col

    def _stamp_markings(self, tex: np.ndarray, town: Town) -> None:
        for stripe in town.markings():
            pts = stripe.polyline.resampled(self.resolution * 0.75).points
            half_w_tex = max(1, int(round(stripe.width / 2.0 / self.resolution)))
            dash_period = 6.0  # metres: 3 on, 3 off
            dist = 0.0
            prev = pts[0]
            for p in pts:
                dist += p.distance_to(prev)
                prev = p
                if stripe.dashed and (dist % dash_period) > dash_period / 2.0:
                    continue
                row = int((p.y - self.y0) / self.resolution)
                col = int((p.x - self.x0) / self.resolution)
                r0 = max(0, row - half_w_tex + 1)
                r1 = min(self.ny, row + half_w_tex)
                c0 = max(0, col - half_w_tex + 1)
                c1 = min(self.nx, col + half_w_tex)
                if r0 < r1 and c0 < c1:
                    tex[r0:r1, c0:c1] = stripe.color

    def _stamp_buildings(self, tex: np.ndarray, buildings: list[Building]) -> None:
        for b in buildings:
            corners = b.box.corners()
            xs = [c.x for c in corners]
            ys = [c.y for c in corners]
            c0 = max(0, int((min(xs) - self.x0) / self.resolution))
            c1 = min(self.nx, int((max(xs) - self.x0) / self.resolution) + 1)
            r0 = max(0, int((min(ys) - self.y0) / self.resolution))
            r1 = min(self.ny, int((max(ys) - self.y0) / self.resolution) + 1)
            if r0 < r1 and c0 < c1:
                footprint = tuple(int(ch * 0.55) for ch in b.color)
                tex[r0:r1, c0:c1] = footprint

    def sample(self, xy: np.ndarray) -> np.ndarray:
        """Nearest-neighbour colour lookup for world points ``(N, 2)``."""
        row, col = self._world_to_texel(xy)
        inside = (row >= 0) & (row < self.ny) & (col >= 0) & (col < self.nx)
        out = np.empty((len(xy), 3), dtype=np.uint8)
        out[:] = SURFACE_COLORS[int(SurfaceType.OFFROAD)]
        out[inside] = self.texture[row[inside], col[inside]]
        return out

    def sample_classes(self, xy: np.ndarray) -> np.ndarray:
        """Surface-class lookup for world points ``(N, 2)`` (uint8)."""
        row, col = self._world_to_texel(xy)
        inside = (row >= 0) & (row < self.ny) & (col >= 0) & (col < self.nx)
        out = np.full(len(xy), int(SurfaceType.OFFROAD), dtype=np.uint8)
        out[inside] = self.classes[row[inside], col[inside]]
        return out


class Renderer:
    """Renders camera frames for one town + camera configuration."""

    def __init__(self, town: Town, camera: CameraModel | None = None, texture_resolution: float = 0.25):
        self.town = town
        self.camera = camera or CameraModel()
        self.texture = TownTexture(town, texture_resolution)
        self._precompute_rays()
        self._sky = self._make_sky()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _precompute_rays(self) -> None:
        cam = self.camera
        f = cam.focal_px
        cx = (cam.width - 1) / 2.0
        cy = (cam.height - 1) / 2.0
        u, v = np.meshgrid(np.arange(cam.width), np.arange(cam.height))
        # Camera-frame ray directions: X forward, Y left, Z up.
        dir_y = -(u - cx) / f
        dir_z = -(v - cy) / f
        theta = math.radians(cam.pitch_deg)
        c, s = math.cos(theta), math.sin(theta)
        # Rotate camera frame to vehicle frame (pitch about the Y/left axis).
        vx = c * 1.0 - s * dir_z
        vz = s * 1.0 + c * dir_z
        vy = dir_y
        descending = vz < -1e-6
        # Rays at/above the horizon get t=0 so the arrays stay finite; the
        # ground mask excludes them anyway.
        t = np.where(descending, cam.mount_height / np.where(descending, -vz, 1.0), 0.0)
        ground_x = cam.forward_offset + t * vx
        ground_y = t * vy
        depth = t * np.hypot(vx, vy)
        self._ground_mask = descending & (depth <= cam.max_depth) & (ground_x > 0.0)
        self._ground_local = np.stack([ground_x, ground_y], axis=-1)
        self._ground_depth = depth
        self._descending = descending

    def _make_sky(self) -> np.ndarray:
        cam = self.camera
        rows = np.linspace(0.0, 1.0, cam.height, dtype=np.float32)[:, None, None]
        sky = SKY_TOP[None, None, :] * (1.0 - rows) + SKY_BOTTOM[None, None, :] * rows
        return np.broadcast_to(sky, (cam.height, cam.width, 3)).copy()

    # ------------------------------------------------------------------
    # Projection helpers (billboard pass)
    # ------------------------------------------------------------------
    def _project(self, pts_vehicle: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project vehicle-frame 3-D points to pixel coordinates.

        ``pts_vehicle`` has shape ``(N, 3)`` (x forward, y left, z up,
        relative to the vehicle origin on the ground).  Returns
        ``(u, v, depth)``; points behind the camera get non-positive depth.
        """
        cam = self.camera
        q = pts_vehicle.astype(np.float64).copy()
        q[:, 0] -= cam.forward_offset
        q[:, 2] -= cam.mount_height
        theta = math.radians(cam.pitch_deg)
        c, s = math.cos(theta), math.sin(theta)
        xc = q[:, 0] * c + q[:, 2] * s
        zc = -q[:, 0] * s + q[:, 2] * c
        yc = q[:, 1]
        f = cam.focal_px
        cx = (cam.width - 1) / 2.0
        cy = (cam.height - 1) / 2.0
        with np.errstate(divide="ignore", invalid="ignore"):
            u = cx - f * yc / xc
            v = cy - f * zc / xc
        return u, v, xc

    def _draw_billboard(
        self,
        img: np.ndarray,
        ego: Transform,
        center: Vec2,
        yaw: float,
        half_length: float,
        half_width: float,
        height: float,
        color: tuple[int, int, int],
        fog_alpha_fn,
    ) -> None:
        cam = self.camera
        local_center = ego.to_local(center)
        dist = local_center.norm()
        if local_center.x < 0.5 or dist > cam.max_depth:
            return
        rel_yaw = yaw - ego.yaw
        c, s = math.cos(rel_yaw), math.sin(rel_yaw)
        corners = []
        for dx, dy in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
            ox = dx * half_length * c - dy * half_width * s
            oy = dx * half_length * s + dy * half_width * c
            corners.append((local_center.x + ox, local_center.y + oy))
        pts = np.array(
            [(x, y, 0.0) for x, y in corners] + [(x, y, height) for x, y in corners]
        )
        u, v, depth = self._project(pts)
        if np.any(depth < 0.2):
            return
        u0 = int(math.floor(np.min(u)))
        u1 = int(math.ceil(np.max(u)))
        v_top = int(math.floor(np.min(v)))
        v_base = int(math.ceil(np.max(v)))
        u0 = max(0, u0)
        u1 = min(cam.width - 1, u1)
        v_top = max(0, v_top)
        v_base = min(cam.height - 1, v_base)
        if u0 > u1 or v_top > v_base:
            return
        shade = 1.0 - 0.35 * min(dist / cam.max_depth, 1.0)
        col = np.array(color, dtype=np.float32) * shade
        alpha = fog_alpha_fn(dist)
        col = col * (1.0 - alpha) + FOG_COLOR * alpha
        img[v_top : v_base + 1, u0 : u1 + 1] = col.astype(np.uint8)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def render(
        self,
        ego: Transform,
        actors: list | None = None,
        weather: Weather | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render one RGB frame from the ego vehicle's hood camera.

        ``actors`` is any iterable of objects with ``position``, ``yaw``,
        ``half_length``, ``half_width``, ``height`` and ``color`` attributes
        (the ego itself should not be included).  ``rng`` drives rain streak
        placement only.
        """
        weather = weather or Weather("ClearNoon")
        cam = self.camera
        img = self._sky.copy()

        # Ground pass: transform precomputed local ground points to world.
        cos_y, sin_y = math.cos(ego.yaw), math.sin(ego.yaw)
        gl = self._ground_local
        wx = ego.position.x + gl[..., 0] * cos_y - gl[..., 1] * sin_y
        wy = ego.position.y + gl[..., 0] * sin_y + gl[..., 1] * cos_y
        mask = self._ground_mask
        pts = np.column_stack([wx[mask], wy[mask]])
        colors = self.texture.sample(pts).astype(np.float32)

        # Distance fog over the ground pass.
        visibility = cam.max_depth * (1.0 - 0.85 * weather.fog_density)
        depth = self._ground_depth[mask]
        alpha = np.clip(depth / visibility, 0.0, 1.0)[:, None].astype(np.float32)
        if weather.fog_density > 0.0:
            alpha = alpha ** max(0.5, (1.0 - weather.fog_density))
        colors = colors * (1.0 - alpha) + FOG_COLOR[None, :] * alpha
        img[mask] = colors

        # Below-horizon pixels past max depth fade into haze.
        haze_mask = (~mask) & self._descending & (self._ground_depth >= cam.max_depth)
        img[haze_mask] = FOG_COLOR

        def fog_alpha(d: float) -> float:
            a = min(max(d / visibility, 0.0), 1.0)
            if weather.fog_density > 0.0:
                a = a ** max(0.5, 1.0 - weather.fog_density)
            return float(a)

        # Billboard pass: buildings then actors, far to near.
        drawables = []
        for b in self.town.buildings:
            drawables.append(
                (b.box.center, 0.0, b.box.half_length, b.box.half_width, b.height, b.color)
            )
        for a in actors or []:
            drawables.append(
                (a.position, a.yaw, a.half_length, a.half_width, a.height, a.color)
            )
        drawables.sort(key=lambda d: ego.position.distance_to(d[0]), reverse=True)
        for center, yaw, hl, hw, height, color in drawables:
            self._draw_billboard(img, ego, center, yaw, hl, hw, height, color, fog_alpha)

        # Atmosphere: rain streaks and brightness.
        if weather.rain_intensity > 0.0 and rng is not None:
            n = int(weather.rain_intensity * cam.width * cam.height * 0.01)
            if n > 0:
                us = rng.integers(0, cam.width, n)
                vs = rng.integers(0, max(1, cam.height - 4), n)
                lengths = rng.integers(2, 5, n)
                for ui, vi, li in zip(us, vs, lengths):
                    img[vi : vi + li, ui] = np.minimum(
                        img[vi : vi + li, ui] * 0.7 + 90.0, 255.0
                    )
        if weather.brightness != 1.0:
            img = img * weather.brightness
        return np.clip(img, 0.0, 255.0).astype(np.uint8)

    # ------------------------------------------------------------------
    # Ground-truth layers (semantic segmentation + depth)
    # ------------------------------------------------------------------
    def render_semantic_depth(
        self, ego: Transform, actors: list | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth semantic and depth images for the current view.

        Returns ``(semantic, depth)``: a ``uint8`` class map using
        :class:`SemanticClass` ids and a ``float32`` depth map in metres
        (``inf`` for sky).  These are the CARLA-style auxiliary camera
        outputs — not consumed by the IL-CNN, but the natural substrate
        for perception-level fault studies and for labelling datasets.
        """
        cam = self.camera
        semantic = np.full((cam.height, cam.width), SemanticClass.SKY, dtype=np.uint8)
        depth = np.full((cam.height, cam.width), np.inf, dtype=np.float32)

        cos_y, sin_y = math.cos(ego.yaw), math.sin(ego.yaw)
        gl = self._ground_local
        wx = ego.position.x + gl[..., 0] * cos_y - gl[..., 1] * sin_y
        wy = ego.position.y + gl[..., 0] * sin_y + gl[..., 1] * cos_y
        mask = self._ground_mask
        pts = np.column_stack([wx[mask], wy[mask]])
        surface = self.texture.sample_classes(pts)
        sem_ground = np.empty_like(surface)
        for surf, sem_id in SemanticClass.FROM_SURFACE.items():
            sem_ground[surface == surf] = sem_id
        semantic[mask] = sem_ground
        depth[mask] = self._ground_depth[mask]

        drawables = [
            (b.box.center, 0.0, b.box.half_length, b.box.half_width, b.height,
             SemanticClass.BUILDING)
            for b in self.town.buildings
        ]
        for a in actors or []:
            cls = (
                SemanticClass.PEDESTRIAN
                if getattr(a, "role", "") == "pedestrian"
                else SemanticClass.VEHICLE
            )
            drawables.append((a.position, a.yaw, a.half_length, a.half_width, a.height, cls))
        drawables.sort(key=lambda d: ego.position.distance_to(d[0]), reverse=True)

        for center, yaw, hl, hw, height, cls in drawables:
            local_center = ego.to_local(center)
            dist = local_center.norm()
            if local_center.x < 0.5 or dist > cam.max_depth:
                continue
            c, s = math.cos(yaw - ego.yaw), math.sin(yaw - ego.yaw)
            corners = []
            for dx, dy in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
                ox = dx * hl * c - dy * hw * s
                oy = dx * hl * s + dy * hw * c
                corners.append((local_center.x + ox, local_center.y + oy))
            pts3 = np.array(
                [(x, y, 0.0) for x, y in corners] + [(x, y, height) for x, y in corners]
            )
            u, v, d = self._project(pts3)
            if np.any(d < 0.2):
                continue
            u0 = max(0, int(math.floor(np.min(u))))
            u1 = min(cam.width - 1, int(math.ceil(np.max(u))))
            v_top = max(0, int(math.floor(np.min(v))))
            v_base = min(cam.height - 1, int(math.ceil(np.max(v))))
            if u0 > u1 or v_top > v_base:
                continue
            semantic[v_top : v_base + 1, u0 : u1 + 1] = cls
            depth[v_top : v_base + 1, u0 : u1 + 1] = dist
        return semantic, depth
