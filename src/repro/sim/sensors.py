"""Sensor models attached to the ego vehicle.

Each sensor produces one reading per frame on the server side; readings are
bundled into a :class:`SensorFrame` and shipped to the agent client through
the sensor channel.  AVFI's *input fault injectors* operate on exactly this
bundle (between server and agent), so every reading type here is a fault
target.

Noise models are intentionally simple but real: Gaussian position noise on
GPS scaled by weather, multiplicative speedometer noise, and max-range
clipping on the 2-D LIDAR.  All randomness flows through the world RNG so
episodes replay exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from .geometry import Vec2, batch_ray_hits, batch_ray_hits_multi, pad_box_packs
from .render import CameraModel, Renderer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .actors import Vehicle
    from .world import World

__all__ = [
    "SensorFrame",
    "Sensor",
    "Camera",
    "SemanticCamera",
    "DepthCamera",
    "GPS",
    "Speedometer",
    "Lidar2D",
    "SensorSuite",
    "read_frames_batch",
]


@dataclass
class SensorFrame:
    """All sensor readings produced at one simulation frame.

    This is the payload of a "sensor" packet.  ``image`` is the RGB camera
    array (H, W, 3) uint8; ``gps`` is the measured world position (metres);
    ``speed`` the measured speed (m/s); ``lidar`` the range array (metres)
    or ``None`` when no LIDAR is mounted; ``heading`` the measured yaw.
    """

    frame: int
    image: np.ndarray
    gps: tuple[float, float]
    speed: float
    heading: float
    lidar: Optional[np.ndarray] = None

    def copy(self) -> "SensorFrame":
        """Deep-enough copy so fault injectors can mutate safely."""
        return SensorFrame(
            frame=self.frame,
            image=self.image.copy(),
            gps=tuple(self.gps),
            speed=float(self.speed),
            heading=float(self.heading),
            lidar=None if self.lidar is None else self.lidar.copy(),
        )


class Sensor:
    """Base sensor; subclasses implement :meth:`read`."""

    name = "sensor"

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator):
        """Produce this sensor's reading for the current frame."""
        raise NotImplementedError


class Camera(Sensor):
    """Forward RGB camera rendered by :class:`repro.sim.render.Renderer`."""

    name = "camera"

    def __init__(self, renderer: Renderer):
        self.renderer = renderer

    @property
    def model(self) -> CameraModel:
        """The camera intrinsics in use."""
        return self.renderer.camera

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> np.ndarray:
        others = world.other_actors(vehicle.id)
        return self.renderer.render(vehicle.transform, others, world.weather, rng)


class SemanticCamera(Sensor):
    """Ground-truth semantic segmentation camera (CARLA parity).

    Not part of the standard :class:`SensorFrame` (the paper's ADA is
    RGB-only); used for perception-level fault studies and for labelling
    datasets.  Returns a ``uint8`` class map of
    :class:`~repro.sim.render.SemanticClass` ids.
    """

    name = "semantic"

    def __init__(self, renderer: Renderer):
        self.renderer = renderer

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> np.ndarray:
        others = world.other_actors(vehicle.id)
        semantic, _ = self.renderer.render_semantic_depth(vehicle.transform, others)
        return semantic


class DepthCamera(Sensor):
    """Ground-truth depth camera: metres per pixel, ``inf`` for sky."""

    name = "depth"

    def __init__(self, renderer: Renderer):
        self.renderer = renderer

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> np.ndarray:
        others = world.other_actors(vehicle.id)
        _, depth = self.renderer.render_semantic_depth(vehicle.transform, others)
        return depth


class GPS(Sensor):
    """Position sensor with weather-scaled Gaussian noise and optional bias."""

    name = "gps"

    def __init__(self, noise_std: float = 0.5, bias: Vec2 = Vec2(0.0, 0.0)):
        if noise_std < 0:
            raise ValueError("noise_std cannot be negative")
        self.noise_std = noise_std
        self.bias = bias

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> tuple[float, float]:
        scale = self.noise_std * world.weather.sensor_noise_scale
        nx, ny = rng.normal(0.0, scale, 2) if scale > 0 else (0.0, 0.0)
        return (
            vehicle.position.x + self.bias.x + float(nx),
            vehicle.position.y + self.bias.y + float(ny),
        )


class Speedometer(Sensor):
    """Speed sensor with multiplicative noise (wheel-encoder style)."""

    name = "speed"

    def __init__(self, noise_frac: float = 0.01):
        if noise_frac < 0:
            raise ValueError("noise_frac cannot be negative")
        self.noise_frac = noise_frac

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> float:
        noise = rng.normal(0.0, self.noise_frac) if self.noise_frac > 0 else 0.0
        return float(vehicle.speed() * (1.0 + noise))


class Lidar2D(Sensor):
    """Planar LIDAR: ``n_rays`` ranges over ``fov_deg`` centred forward.

    Rays hit actor bounding boxes and building boxes; misses return
    ``max_range``.  Readings are metres, ordered left-to-right.
    """

    name = "lidar"

    def __init__(self, n_rays: int = 36, fov_deg: float = 180.0, max_range: float = 40.0):
        if n_rays < 1:
            raise ValueError("need at least one ray")
        self.n_rays = n_rays
        self.fov = math.radians(fov_deg)
        self.max_range = max_range

    def ray_angles(self) -> np.ndarray:
        """Relative bearing of every ray, radians, left to right."""
        if self.n_rays == 1:
            return np.array([0.0])
        return np.linspace(self.fov / 2.0, -self.fov / 2.0, self.n_rays)

    def _angles(self) -> list[float]:
        """:meth:`ray_angles` as cached plain floats (hot-path helper)."""
        key = (self.n_rays, self.fov)
        cached = getattr(self, "_angles_cache", None)
        if cached is None or cached[0] != key:
            self._angles_cache = (key, self.ray_angles().tolist())
        return self._angles_cache[1]

    def scan_inputs(
        self, world: "World", vehicle: "Vehicle"
    ) -> tuple[Vec2, np.ndarray, np.ndarray]:
        """``(origin, directions, packed)`` for this frame's ray cast.

        The Python-side pruning/packing stays per episode; the returned
        arrays feed either :func:`~repro.sim.geometry.batch_ray_hits`
        (serial) or, stacked across episodes,
        :func:`~repro.sim.geometry.batch_ray_hits_multi` (multiplexed) —
        both produce the same bits from these inputs.
        """
        origin = vehicle.position
        ox, oy = origin.x, origin.y
        max_range = self.max_range
        # Actor boxes are dynamic: pack (and prune) them per frame —
        # plain-float math, identical to OrientedBox.ray_hit_distance's
        # per-call derivation.  Building boxes are static: packed once per
        # town and pruned here with the same range test the scalar path
        # used.
        rows = []
        ego_id = vehicle.id
        for a in world.actors:
            if a.id == ego_id or not a.alive:
                continue
            pos = a.position
            reach = max_range + max(a.half_length, a.half_width)
            if math.hypot(ox - pos.x, oy - pos.y) <= reach:
                yaw = a.yaw
                rows.append(
                    (
                        pos.x,
                        pos.y,
                        math.cos(-yaw),
                        math.sin(-yaw),
                        a.half_length,
                        a.half_width,
                    )
                )
        packed_buildings, prune = world.town.building_box_pack()
        keep = [
            i
            for i, (bx, by, max_half) in enumerate(prune)
            if math.hypot(ox - bx, oy - by) <= max_range + max_half
        ]
        kept_buildings = (
            packed_buildings if len(keep) == len(prune) else packed_buildings[keep]
        )
        if rows:
            actor_pack = np.array(rows, dtype=np.float64)
            packed = np.concatenate([actor_pack, kept_buildings])
        else:
            packed = kept_buildings
        # Per-ray unit directions, derived exactly as the scalar path did
        # (from_heading then normalized; the hypot of an exact unit pair
        # may still differ from 1.0 in the last bit).  The rays depend
        # only on the ego yaw, which repeats whenever the vehicle holds
        # its heading, so the last frame's array is memoised and reused
        # verbatim (callers treat it as read-only).
        ego_yaw = vehicle.yaw
        key = (self.n_rays, self.fov, ego_yaw)
        cached = getattr(self, "_dir_cache", None)
        if cached is not None and cached[0] == key:
            return origin, cached[1], packed
        directions = np.empty((self.n_rays, 2), dtype=np.float64)
        for i, rel in enumerate(self._angles()):
            heading = ego_yaw + rel
            dx, dy = math.cos(heading), math.sin(heading)
            norm = math.hypot(dx, dy)
            if norm < 1e-12:
                directions[i, 0] = 1.0
                directions[i, 1] = 0.0
            else:
                directions[i, 0] = dx / norm
                directions[i, 1] = dy / norm
        self._dir_cache = (key, directions)
        return origin, directions, packed

    def read(self, world: "World", vehicle: "Vehicle", rng: np.random.Generator) -> np.ndarray:
        origin, directions, packed = self.scan_inputs(world, vehicle)
        return batch_ray_hits(origin, directions, packed, self.max_range)


class SensorSuite:
    """The set of sensors mounted on the ego vehicle.

    ``read_frame`` produces the :class:`SensorFrame` bundle the server ships
    each tick.  The camera is mandatory (the ADA is camera-driven); LIDAR is
    optional.
    """

    def __init__(
        self,
        camera: Camera,
        gps: GPS | None = None,
        speedometer: Speedometer | None = None,
        lidar: Lidar2D | None = None,
    ):
        self.camera = camera
        self.gps = gps or GPS()
        self.speedometer = speedometer or Speedometer()
        self.lidar = lidar

    def read_frame(
        self, world: "World", vehicle: "Vehicle", frame: int, rng: np.random.Generator
    ) -> SensorFrame:
        """Read every sensor and bundle the results."""
        return SensorFrame(
            frame=frame,
            image=self.camera.read(world, vehicle, rng),
            gps=self.gps.read(world, vehicle, rng),
            speed=self.speedometer.read(world, vehicle, rng),
            heading=vehicle.yaw,
            lidar=None if self.lidar is None else self.lidar.read(world, vehicle, rng),
        )


def read_frames_batch(
    items: list[tuple[SensorSuite, "World", "Vehicle", int]],
) -> list[SensorFrame]:
    """Read many episodes' sensor bundles with cross-episode batching.

    ``items`` holds one ``(suite, world, vehicle, frame)`` tuple per live
    episode; the returned list pairs with it.  Camera work batches per
    shared renderer (episodes in one scene-fingerprint group share a
    cached renderer), LIDAR ray casts batch per scan shape
    ``(n_rays, fov, max_range)``; GPS/speedometer stay per episode.

    Bit-identity with the serial path holds because every episode draws
    from its *own* ``world.rng`` in the same order as
    :meth:`SensorSuite.read_frame` (camera rain, then GPS, then speed;
    LIDAR consumes no randomness), and the batched numeric kernels are
    elementwise-identical to their per-episode counterparts.
    """
    if not items:
        return []
    n = len(items)

    # Camera pass, grouped by renderer identity.
    images: list[Optional[np.ndarray]] = [None] * n
    cam_groups: dict[int, tuple[Renderer, list[int]]] = {}
    for idx, (suite, world, vehicle, frame) in enumerate(items):
        renderer = suite.camera.renderer
        cam_groups.setdefault(id(renderer), (renderer, []))[1].append(idx)
    for renderer, idxs in cam_groups.values():
        if len(idxs) == 1:
            suite, world, vehicle, _ = items[idxs[0]]
            images[idxs[0]] = suite.camera.read(world, vehicle, world.rng)
            continue
        views = []
        for idx in idxs:
            suite, world, vehicle, _ = items[idx]
            views.append(
                (
                    vehicle.transform,
                    world.other_actors(vehicle.id),
                    world.weather,
                    world.rng,
                )
            )
        for idx, img in zip(idxs, renderer.render_batch(views)):
            images[idx] = img

    # GPS / speed / heading: small per-episode reads in item order (each
    # episode's rng has already consumed its camera draws above).
    gps_l: list[tuple[float, float]] = []
    speed_l: list[float] = []
    heading_l: list[float] = []
    for suite, world, vehicle, frame in items:
        gps_l.append(suite.gps.read(world, vehicle, world.rng))
        speed_l.append(suite.speedometer.read(world, vehicle, world.rng))
        heading_l.append(vehicle.yaw)

    # LIDAR pass, grouped by scan shape so directions stack rectangularly.
    lidars: list[Optional[np.ndarray]] = [None] * n
    lidar_groups: dict[tuple[int, float, float], list[int]] = {}
    for idx, (suite, world, vehicle, frame) in enumerate(items):
        if suite.lidar is None:
            continue
        key = (suite.lidar.n_rays, suite.lidar.fov, suite.lidar.max_range)
        lidar_groups.setdefault(key, []).append(idx)
    for (n_rays, fov, max_range), idxs in lidar_groups.items():
        if len(idxs) == 1:
            suite, world, vehicle, _ = items[idxs[0]]
            lidars[idxs[0]] = suite.lidar.read(world, vehicle, world.rng)
            continue
        origins = np.empty((len(idxs), 2), dtype=np.float64)
        dir_stack = []
        packs = []
        for j, idx in enumerate(idxs):
            suite, world, vehicle, _ = items[idx]
            origin, directions, packed = suite.lidar.scan_inputs(world, vehicle)
            origins[j, 0] = origin.x
            origins[j, 1] = origin.y
            dir_stack.append(directions)
            packs.append(packed)
        ranges = batch_ray_hits_multi(
            origins, np.stack(dir_stack), pad_box_packs(packs), max_range
        )
        for j, idx in enumerate(idxs):
            lidars[idx] = ranges[j].copy()

    return [
        SensorFrame(
            frame=frame,
            image=images[i],
            gps=gps_l[i],
            speed=speed_l[i],
            heading=heading_l[i],
            lidar=lidars[i],
        )
        for i, (suite, world, vehicle, frame) in enumerate(items)
    ]
