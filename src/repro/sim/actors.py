"""World actors: the ego vehicle, NPC traffic and pedestrians.

Actors are server-side entities advanced by :class:`repro.sim.world.World`
each tick.  The ego vehicle is externally controlled (by the agent client);
NPC vehicles follow lanes with a simple pure-pursuit behaviour and yield to
obstacles; pedestrians walk sidewalks and occasionally cross the road,
which is what makes collision faults observable in campaigns.

All behaviour randomness flows through the generator passed to ``tick`` so
whole episodes are reproducible from a single seed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from .geometry import OrientedBox, Polyline, Transform, Vec2, wrap_angle
from .physics import BicycleModel, VehicleControl, VehicleSpec, VehicleState
from .town import Lane, Town

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .world import World

__all__ = [
    "Actor",
    "Vehicle",
    "Pedestrian",
    "NPCVehicle",
    "PEDESTRIAN_SPEC",
    "BEHAVIOR_NAMES",
    "BehaviorSpec",
    "NPCBehavior",
    "make_behavior",
]

_actor_ids = itertools.count(1)


def _next_actor_id() -> int:
    return next(_actor_ids)


class Actor:
    """Base class for anything with a pose and a collision box."""

    role: str = "actor"

    def __init__(self, transform: Transform, half_length: float, half_width: float, height: float):
        self.id = _next_actor_id()
        self.transform = transform
        self.half_length = half_length
        self.half_width = half_width
        self.height = height
        self.alive = True

    @property
    def position(self) -> Vec2:
        """World position."""
        return self.transform.position

    @property
    def yaw(self) -> float:
        """World heading, radians."""
        return self.transform.yaw

    def bounding_box(self) -> OrientedBox:
        """Ground-plane collision box at the current pose."""
        return OrientedBox(self.position, self.yaw, self.half_length, self.half_width)

    def speed(self) -> float:
        """Scalar speed in m/s (zero for static actors)."""
        return 0.0

    def tick(self, world: "World", dt: float, rng: np.random.Generator) -> None:
        """Advance the actor by one frame.  Static actors do nothing."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.id}, pos=({self.position.x:.1f}, {self.position.y:.1f}))"


class Vehicle(Actor):
    """A car driven by externally supplied controls (the ego, typically)."""

    role = "vehicle"
    color: tuple[int, int, int] = (180, 30, 30)

    def __init__(self, transform: Transform, spec: VehicleSpec | None = None):
        spec = spec or VehicleSpec()
        hl, hw = spec.half_extents()
        super().__init__(transform, hl, hw, spec.height)
        self.spec = spec
        self.model = BicycleModel(spec)
        self.state = VehicleState(transform.position.x, transform.position.y, transform.yaw, 0.0)
        self.control = VehicleControl()
        self.odometer_m = 0.0

    def speed(self) -> float:
        """Current signed speed, m/s."""
        return self.state.speed

    def apply_control(self, control: VehicleControl) -> None:
        """Set the control applied at the next tick (held until replaced)."""
        self.control = control

    def teleport(self, transform: Transform, speed: float = 0.0) -> None:
        """Move the vehicle instantly (spawning / scenario reset)."""
        self.state = self.model.teleport(self.state, transform, speed)
        self.transform = transform

    def tick(self, world: "World", dt: float, rng: np.random.Generator) -> None:
        prev_x, prev_y = self.state.x, self.state.y
        self.state = self.model.step(self.state, self.control, dt)
        self.transform = self.state.transform
        self.odometer_m += math.hypot(self.state.x - prev_x, self.state.y - prev_y)


PEDESTRIAN_SPEC = {"half_length": 0.25, "half_width": 0.25, "height": 1.8}


class Pedestrian(Actor):
    """A walker that follows sidewalks and sometimes crosses the road.

    The walker holds a current goal point; on arrival (or timeout) it draws
    a new one.  With probability ``cross_rate`` per second the next goal is
    directly across the adjacent road, creating the jaywalking events that
    exercise collision detection.
    """

    role = "pedestrian"
    color: tuple[int, int, int] = (220, 170, 40)

    def __init__(
        self,
        transform: Transform,
        town: Town,
        walk_speed: float = 1.4,
        cross_rate: float = 0.02,
    ):
        super().__init__(transform, **PEDESTRIAN_SPEC)
        self.town = town
        self.walk_speed = walk_speed
        self.cross_rate = cross_rate
        self._goal: Optional[Vec2] = None
        self._goal_patience_s = 0.0

    def speed(self) -> float:
        """Walking speed while a goal is active."""
        return self.walk_speed if self._goal is not None else 0.0

    def _sidewalk_goal(self, rng: np.random.Generator) -> Vec2:
        """A goal further along the sidewalk of the nearest road."""
        lane, station, lateral = self.town.nearest_lane(self.position)
        road = lane.road
        side = 1.0 if lateral >= 0 else -1.0
        walk_offset = road.half_width + self.town.sidewalk_width / 2.0
        direction = 1.0 if rng.random() < 0.7 else -1.0
        target_station = station + direction * float(rng.uniform(8.0, 25.0))
        target_station = min(max(target_station, 0.0), lane.length)
        base = lane.centerline.point_at(target_station)
        heading = lane.centerline.heading_at(target_station)
        normal = Vec2.from_heading(heading + math.pi / 2.0)
        return base + normal * (side * walk_offset)

    def _crossing_goal(self) -> Vec2:
        """A goal straight across the nearest road."""
        lane, station, lateral = self.town.nearest_lane(self.position)
        road = lane.road
        heading = lane.centerline.heading_at(station)
        normal = Vec2.from_heading(heading + math.pi / 2.0)
        span = 2.0 * road.half_width + self.town.sidewalk_width
        sign = -1.0 if lateral >= 0 else 1.0
        return self.position + normal * (sign * span)

    def tick(self, world: "World", dt: float, rng: np.random.Generator) -> None:
        if self._goal is None or self._goal_patience_s <= 0.0:
            # ``cross_rate`` is per second; goals last 6-20 s, so scale the
            # per-goal crossing probability by the expected goal duration.
            if rng.random() < min(0.5, self.cross_rate * 13.0):
                self._goal = self._crossing_goal()
            else:
                self._goal = self._sidewalk_goal(rng)
            self._goal_patience_s = float(rng.uniform(6.0, 20.0))
        self._goal_patience_s -= dt

        to_goal = self._goal - self.position
        dist = to_goal.norm()
        if dist < 0.5:
            self._goal = None
            return
        step = min(self.walk_speed * dt, dist)
        direction = to_goal.normalized()
        new_pos = self.position + direction * step
        self.transform = Transform(new_pos, direction.heading())


#: Declarative NPC behaviors a scenario can attach to a scripted vehicle.
BEHAVIOR_NAMES = ("cut_in", "brake_on_proximity", "run_junction")

_TURNS = (None, "LEFT", "RIGHT", "STRAIGHT")


@dataclass(frozen=True)
class BehaviorSpec:
    """A declarative reactive behavior for a scripted NPC vehicle.

    The behavior is a three-state machine compiled onto the NPC's pursuit
    controller by :func:`make_behavior`: the vehicle *cruises* normally
    until the ego comes within ``trigger_distance`` (the interrupt
    condition), runs its *maneuver* for ``duration_s`` seconds, then is
    *done* and reverts to plain lane following.

    * ``cut_in`` — during the maneuver the pursuit target is biased
      ``lateral_m`` metres to the vehicle's left, swerving it toward the
      adjacent lane;
    * ``brake_on_proximity`` — the maneuver is a full brake (a suddenly
      stopping lead vehicle);
    * ``run_junction`` — the maneuver disables the hazard-yield check, so
      the vehicle drives through the junction without giving way.

    ``turn`` (LEFT/RIGHT/STRAIGHT) additionally forces the vehicle's first
    junction choice instead of drawing it from the episode RNG — how
    maneuver-conflict scenarios route an NPC onto a crossing left turn.
    ``speed_scale`` multiplies the target speed while the maneuver runs.
    """

    name: str
    trigger_distance: float = 25.0
    duration_s: float = 4.0
    turn: str | None = None
    speed_scale: float = 1.0
    lateral_m: float = 1.8

    def __post_init__(self) -> None:
        if self.name not in BEHAVIOR_NAMES:
            raise ValueError(
                f"unknown behavior {self.name!r} (expected one of {', '.join(BEHAVIOR_NAMES)})"
            )
        if self.trigger_distance <= 0.0:
            raise ValueError("trigger_distance must be positive")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if self.turn not in _TURNS:
            raise ValueError(
                f"unknown turn {self.turn!r} (expected LEFT, RIGHT, STRAIGHT or null)"
            )
        if self.speed_scale <= 0.0:
            raise ValueError("speed_scale must be positive")

    def to_dict(self) -> dict:
        """Canonical JSON form (scenario serialisation)."""
        return {
            "name": str(self.name),
            "trigger_distance": float(self.trigger_distance),
            "duration_s": float(self.duration_s),
            "turn": str(self.turn) if self.turn is not None else None,
            "speed_scale": float(self.speed_scale),
            "lateral_m": float(self.lateral_m),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BehaviorSpec":
        """Rebuild a behavior written by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise TypeError(f"behavior must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "name",
            "trigger_distance",
            "duration_s",
            "turn",
            "speed_scale",
            "lateral_m",
        }
        if unknown:
            raise ValueError(f"behavior has unknown keys {sorted(unknown)}")
        if "name" not in data:
            raise ValueError("behavior needs a 'name'")
        turn = data.get("turn")
        return cls(
            name=str(data["name"]),
            trigger_distance=float(data.get("trigger_distance", 25.0)),
            duration_s=float(data.get("duration_s", 4.0)),
            turn=str(turn) if turn is not None else None,
            speed_scale=float(data.get("speed_scale", 1.0)),
            lateral_m=float(data.get("lateral_m", 1.8)),
        )


class NPCBehavior:
    """The runtime state machine compiled from a :class:`BehaviorSpec`.

    States run ``cruise`` → ``maneuver`` → ``done``; every transition is
    recorded in ``transitions`` as ``(from_state, to_state, frame)`` so
    tests (and campaign assertions) can prove the interrupt actually
    fired.  The machine never draws from the episode RNG — all its
    decisions are functions of world state — so attaching a behavior
    leaves every other actor's random stream untouched.
    """

    CRUISE = "cruise"
    MANEUVER = "maneuver"
    DONE = "done"

    def __init__(self, spec: BehaviorSpec):
        self.spec = spec
        self.state = self.CRUISE
        self.transitions: list[tuple[str, str, int]] = []
        self._maneuver_elapsed_s = 0.0
        self._forced_turn_pending = spec.turn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NPCBehavior({self.spec.name}, state={self.state})"

    def _transition(self, new_state: str, frame: int) -> None:
        self.transitions.append((self.state, new_state, int(frame)))
        self.state = new_state

    def update(self, npc: "NPCVehicle", world: "World", dt: float) -> None:
        """Advance the state machine one frame (called before control)."""
        if self.state == self.CRUISE:
            ego = world.ego
            if (
                ego is not None
                and ego.id != npc.id
                and ego.position.distance_to(npc.position) <= self.spec.trigger_distance
            ):
                self._transition(self.MANEUVER, world.frame)
        elif self.state == self.MANEUVER:
            self._maneuver_elapsed_s += dt
            if self._maneuver_elapsed_s >= self.spec.duration_s:
                self._transition(self.DONE, world.frame)

    @property
    def active(self) -> bool:
        """Whether the maneuver is currently running."""
        return self.state == self.MANEUVER

    def interrupted(self) -> bool:
        """Whether the interrupt condition ever fired."""
        return any(t[1] == self.MANEUVER for t in self.transitions)

    # ------------------------------------------------------------------
    # Directives read by NPCVehicle's controller
    # ------------------------------------------------------------------
    def ignore_hazards(self) -> bool:
        """Suppress the hazard-yield check (``run_junction`` maneuver)."""
        return self.active and self.spec.name == "run_junction"

    def brake_now(self) -> bool:
        """Force a full brake (``brake_on_proximity`` maneuver)."""
        return self.active and self.spec.name == "brake_on_proximity"

    def speed_scale(self) -> float:
        """Target-speed multiplier for the current state."""
        return self.spec.speed_scale if self.active else 1.0

    def lateral_offset(self) -> float:
        """Leftward pursuit-target bias, metres (``cut_in`` maneuver)."""
        if self.active and self.spec.name == "cut_in":
            return self.spec.lateral_m
        return 0.0

    def pick_successor(self, town: Town, lane: Lane, options: list[Lane]) -> Lane | None:
        """The forced junction choice, or ``None`` to draw from the RNG.

        The forced ``turn`` applies to the first junction the vehicle
        reaches; afterwards routing reverts to random draws.  Returns
        ``None`` (and keeps the force pending) when no option matches,
        e.g. a junction with no left turn.
        """
        if not self._forced_turn_pending:
            return None
        for option in options:
            if town.turn_direction(lane, option) == self.spec.turn:
                self._forced_turn_pending = False
                return option
        return None


def make_behavior(spec: BehaviorSpec | None) -> NPCBehavior | None:
    """Compile a behavior spec into its runtime state machine."""
    return NPCBehavior(spec) if spec is not None else None


class NPCVehicle(Vehicle):
    """A background vehicle that follows lanes autonomously.

    Pure pursuit over a rolling path buffer built from lane centrelines and
    intersection connector curves; a proportional speed controller tracks
    ``target_speed`` and a hazard check brakes for actors ahead.  Turns at
    junctions are drawn from the seeded generator handed to ``tick``.

    An optional :class:`NPCBehavior` overlays a scripted maneuver on the
    controller (see :class:`BehaviorSpec`); without one, behaviour is
    bit-identical to the plain lane follower.
    """

    role = "npc_vehicle"
    color = (40, 90, 190)

    def __init__(
        self,
        lane: Lane,
        station: float,
        town: Town,
        target_speed: float = 6.0,
        spec: VehicleSpec | None = None,
        behavior: NPCBehavior | None = None,
    ):
        wp = lane.waypoint_at(station)
        super().__init__(Transform(wp.position, wp.yaw), spec)
        self.town = town
        self.target_speed = target_speed
        self.behavior = behavior
        self._lane = lane
        self._station = station
        self._path: list[Vec2] = []
        self._lookahead = 6.0
        # Conservative lower bound on the buffered path length, used to
        # skip the per-tick scan; see _extend_path.
        self._length_bound = 0.0
        self._bound_x = 0.0
        self._bound_y = 0.0

    # ------------------------------------------------------------------
    # Path maintenance
    # ------------------------------------------------------------------
    def _extend_path(self, rng: np.random.Generator) -> None:
        """Append waypoints until the buffer reaches ~40 m ahead.

        The full path scan runs only when needed: after a scan measuring
        ``L``, the length ahead can shrink by at most the distance driven
        since (path edits only append; prunes invalidate the bound), so
        while ``L - driven`` stays >= 45 m the 40 m test cannot possibly
        flip — the 5 m margin dwarfs any floating-point accumulation
        error, keeping decisions (and therefore RNG draws) identical to
        scanning every tick.
        """
        pos = self.transform.position
        bound = self._length_bound
        if bound >= 45.0 and (
            bound - math.hypot(pos.x - self._bound_x, pos.y - self._bound_y) >= 45.0
        ):
            return
        while True:
            total = self._path_length_ahead(50.0)
            if total >= 40.0:
                break
            remaining = self._lane.length - self._station
            if remaining > 1.0:
                step_end = min(self._lane.length, self._station + 20.0)
                s = self._station + 2.0
                while s <= step_end:
                    self._path.append(self._lane.centerline.point_at(s))
                    s += 2.0
                self._station = step_end
                continue
            # At the lane end: pick the next lane through the junction —
            # a behavior's forced turn wins, otherwise draw from the RNG.
            options = self.town.lane_successors(self._lane)
            next_lane = None
            if self.behavior is not None:
                next_lane = self.behavior.pick_successor(self.town, self._lane, options)
            if next_lane is None:
                next_lane = options[int(rng.integers(len(options)))]
            connector = self.town.connection_curve(self._lane, next_lane)
            self._path.extend(connector.points[1:])
            self._lane = next_lane
            self._station = 0.0
        self._length_bound = total
        self._bound_x = pos.x
        self._bound_y = pos.y

    def _path_length_ahead(self, enough: float = math.inf) -> float:
        """Buffered path length; returns early once ``enough`` is reached.

        Distances accumulate left to right exactly as before; stopping at
        ``enough`` cannot change any ``< enough`` comparison (the
        remaining summands are non-negative).
        """
        path = self._path
        if not path:
            return 0.0
        pos = self.transform.position
        hypot = math.hypot
        first = path[0]
        ax, ay = first.x, first.y
        total = hypot(pos.x - ax, pos.y - ay)
        for i in range(1, len(path)):
            if total >= enough:
                return total
            p = path[i]
            bx, by = p.x, p.y
            total += hypot(ax - bx, ay - by)
            ax, ay = bx, by
        return total

    def _prune_path(self) -> None:
        path = self._path
        pos = self.transform.position
        while len(path) > 1 and math.hypot(pos.x - path[0].x, pos.y - path[0].y) < 3.0:
            path.pop(0)
            # Popping can shorten the measured length ahead: force the
            # next _extend_path to rescan.
            self._length_bound = 0.0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def _hazard_ahead(self, world: "World") -> bool:
        """Another actor inside the braking cone directly ahead.

        Distances are bumper-to-bumper (both actors' extents subtracted),
        otherwise a queued vehicle creeps forward until the boxes overlap.
        """
        stop_dist = self.model.stopping_distance(self.state.speed) + 3.0
        yaw = self.transform.yaw
        fx, fy = math.cos(yaw), math.sin(yaw)
        pos = self.transform.position
        px, py = pos.x, pos.y
        my_id = self.id
        hl = self.half_length
        for other in world.actors:
            if other.id == my_id or not other.alive:
                continue
            opos = other.transform.position
            relx = opos.x - px
            rely = opos.y - py
            ahead = relx * fx + rely * fy
            if ahead <= 0.0:
                continue
            clearance = hl + max(other.half_length, other.half_width)
            if ahead - clearance < stop_dist and abs(relx * fy - rely * fx) < 2.2:
                return True
        return False

    def _pursuit_control(self, world: "World") -> VehicleControl:
        self._prune_path()
        if not self._path:
            return VehicleControl(brake=1.0)
        # Find the pursuit target: first path point beyond the lookahead.
        pos = self.transform.position
        lookahead = self._lookahead
        target = self._path[-1]
        for p in self._path:
            if math.hypot(pos.x - p.x, pos.y - p.y) >= lookahead:
                target = p
                break
        # Inline Transform.to_local + norm (same expressions, no Vec2s).
        yaw = self.transform.yaw
        behavior = self.behavior
        tgt_x, tgt_y = target.x, target.y
        if behavior is not None:
            # A cut-in maneuver biases the pursuit target to the left of
            # the vehicle's heading, swerving it off its lane.
            lat = behavior.lateral_offset()
            if lat != 0.0:
                tgt_x -= math.sin(yaw) * lat
                tgt_y += math.cos(yaw) * lat
        c, s = math.cos(-yaw), math.sin(-yaw)
        tx = tgt_x - pos.x
        ty = tgt_y - pos.y
        local_y = s * tx + c * ty
        dist = max(math.hypot(c * tx - s * ty, local_y), 1e-3)
        curvature = 2.0 * local_y / (dist * dist)
        steer_angle = math.atan(curvature * self.spec.wheelbase)
        steer = steer_angle / self.spec.max_steer_angle

        if behavior is not None and behavior.brake_now():
            return VehicleControl(steer=steer, brake=1.0)
        speed_target = self.target_speed * world.weather.friction
        if behavior is not None:
            speed_target *= behavior.speed_scale()
        # Slow for curvature so turns stay on the connector curve.
        speed_target = min(speed_target, max(2.0, 8.0 / (1.0 + 25.0 * abs(curvature))))
        if (behavior is None or not behavior.ignore_hazards()) and self._hazard_ahead(world):
            return VehicleControl(steer=steer, brake=1.0)
        err = speed_target - self.state.speed
        if err >= 0.0:
            return VehicleControl(steer=steer, throttle=min(0.8, 0.3 + 0.25 * err))
        return VehicleControl(steer=steer, brake=min(1.0, -0.4 * err))

    def tick(self, world: "World", dt: float, rng: np.random.Generator) -> None:
        if self.behavior is not None:
            self.behavior.update(self, world, dt)
        self._extend_path(rng)
        self.apply_control(self._pursuit_control(world))
        super().tick(world, dt, rng)
