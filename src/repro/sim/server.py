"""The simulation server: world tick loop plus packet I/O.

Mirrors CARLA's server role.  Each frame the server:

1. polls the **control channel** for the freshest due command and applies
   it to the ego's actuators — if nothing arrived (delayed or dropped by a
   timing fault) the previous command stays applied, which is exactly the
   "replay" semantics of the paper's output-delay experiment;
2. ticks the :class:`~repro.sim.world.World` (physics, NPCs, pedestrians);
3. runs the violation monitor;
4. reads the ego's :class:`~repro.sim.sensors.SensorSuite` and ships the
   bundle on the **sensor channel**.

The server never sees the agent: the channels are the only coupling, so
every fault the paper injects between components has a concrete seam here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .channel import Channel, Packet
from .physics import VehicleControl
from .sensors import SensorFrame, SensorSuite
from .violations import ViolationEvent, ViolationMonitor
from .world import World

__all__ = ["SimulationServer", "ServerFrameResult"]


@dataclass
class ServerFrameResult:
    """What one server tick produced (for the episode runner)."""

    frame: int
    new_violations: list[ViolationEvent]
    applied_control: VehicleControl


class SimulationServer:
    """Owns the world and the server side of both channels."""

    def __init__(
        self,
        world: World,
        sensors: SensorSuite,
        sensor_channel: Channel,
        control_channel: Channel,
        monitor: ViolationMonitor | None = None,
    ):
        if world.ego is None:
            raise ValueError("world must have an ego vehicle before the server starts")
        self.world = world
        self.sensors = sensors
        self.sensor_channel = sensor_channel
        self.control_channel = control_channel
        self.monitor = monitor or ViolationMonitor()
        self._last_control = VehicleControl()

    @property
    def frame(self) -> int:
        """Current world frame."""
        return self.world.frame

    def send_initial_frame(self) -> None:
        """Ship the frame-0 sensor bundle so the agent has input to start."""
        ego = self.world.ego
        assert ego is not None
        bundle = self.sensors.read_frame(self.world, ego, self.world.frame, self.world.rng)
        self.sensor_channel.send(Packet("sensor", self.world.frame, bundle))

    # -- stepwise phases -----------------------------------------------
    #
    # tick() used to be monolithic; it is now the composition of four
    # explicit phases so an episode multiplexer can interleave many
    # servers at tick granularity and batch the sensing phase across
    # episodes.  The server clock is simply ``world.frame``; channel
    # delivery is keyed on whatever frame the *polling* side passes, so a
    # client stepped on its own clock (jitter) needs no server change.

    def apply_pending_control(self) -> VehicleControl:
        """Phase 1: poll the freshest due control and apply it.

        Polls at the server's own clock (the pre-tick ``world.frame``);
        when nothing is due the previous command stays applied — the
        paper's hold-and-replay semantics.
        """
        ego = self.world.ego
        assert ego is not None
        packet = self.control_channel.poll_latest(self.world.frame)
        if packet is not None:
            self._last_control = packet.payload
        ego.apply_control(self._last_control)
        return self._last_control

    def advance_world(self) -> tuple[int, list[ViolationEvent]]:
        """Phases 2-3: tick physics/NPCs and run the violation monitor."""
        ego = self.world.ego
        assert ego is not None
        frame = self.world.tick()
        new_events = self.monitor.step(self.world, ego, frame)
        return frame, new_events

    def read_bundle(self) -> "SensorFrame":
        """Phase 4a: read the sensor suite at the current world frame."""
        ego = self.world.ego
        assert ego is not None
        return self.sensors.read_frame(self.world, ego, self.world.frame, self.world.rng)

    def publish_bundle(self, bundle: "SensorFrame") -> None:
        """Phase 4b: ship a sensor bundle on the sensor channel.

        Split from :meth:`read_bundle` so a multiplexer can compute the
        bundle in a cross-episode batch and publish it here unchanged.
        """
        self.sensor_channel.send(Packet("sensor", self.world.frame, bundle))

    def tick(self) -> ServerFrameResult:
        """Advance the simulation one frame (steps 1-4 above)."""
        applied = self.apply_pending_control()
        frame, new_events = self.advance_world()
        self.publish_bundle(self.read_bundle())
        return ServerFrameResult(frame, new_events, applied)
