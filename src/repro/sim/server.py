"""The simulation server: world tick loop plus packet I/O.

Mirrors CARLA's server role.  Each frame the server:

1. polls the **control channel** for the freshest due command and applies
   it to the ego's actuators — if nothing arrived (delayed or dropped by a
   timing fault) the previous command stays applied, which is exactly the
   "replay" semantics of the paper's output-delay experiment;
2. ticks the :class:`~repro.sim.world.World` (physics, NPCs, pedestrians);
3. runs the violation monitor;
4. reads the ego's :class:`~repro.sim.sensors.SensorSuite` and ships the
   bundle on the **sensor channel**.

The server never sees the agent: the channels are the only coupling, so
every fault the paper injects between components has a concrete seam here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .channel import Channel, Packet
from .physics import VehicleControl
from .sensors import SensorSuite
from .violations import ViolationEvent, ViolationMonitor
from .world import World

__all__ = ["SimulationServer", "ServerFrameResult"]


@dataclass
class ServerFrameResult:
    """What one server tick produced (for the episode runner)."""

    frame: int
    new_violations: list[ViolationEvent]
    applied_control: VehicleControl


class SimulationServer:
    """Owns the world and the server side of both channels."""

    def __init__(
        self,
        world: World,
        sensors: SensorSuite,
        sensor_channel: Channel,
        control_channel: Channel,
        monitor: ViolationMonitor | None = None,
    ):
        if world.ego is None:
            raise ValueError("world must have an ego vehicle before the server starts")
        self.world = world
        self.sensors = sensors
        self.sensor_channel = sensor_channel
        self.control_channel = control_channel
        self.monitor = monitor or ViolationMonitor()
        self._last_control = VehicleControl()

    @property
    def frame(self) -> int:
        """Current world frame."""
        return self.world.frame

    def send_initial_frame(self) -> None:
        """Ship the frame-0 sensor bundle so the agent has input to start."""
        ego = self.world.ego
        assert ego is not None
        bundle = self.sensors.read_frame(self.world, ego, self.world.frame, self.world.rng)
        self.sensor_channel.send(Packet("sensor", self.world.frame, bundle))

    def tick(self) -> ServerFrameResult:
        """Advance the simulation one frame (steps 1-4 above)."""
        ego = self.world.ego
        assert ego is not None

        packet = self.control_channel.poll_latest(self.world.frame)
        if packet is not None:
            self._last_control = packet.payload
        ego.apply_control(self._last_control)

        frame = self.world.tick()
        new_events = self.monitor.step(self.world, ego, frame)

        bundle = self.sensors.read_frame(self.world, ego, frame, self.world.rng)
        self.sensor_channel.send(Packet("sensor", frame, bundle))
        return ServerFrameResult(frame, new_events, self._last_control)
