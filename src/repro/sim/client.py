"""The agent client: the ADA side of the client/server boundary.

Mirrors CARLA's client role.  Each frame the client polls the sensor
channel; when a bundle arrives it runs the agent's policy and ships the
resulting control command back on the control channel.  When no bundle is
due (sensor-channel timing fault) the agent simply does not act that frame
— the server keeps applying its previous command.

Two filter chains expose AVFI's fig. 1 hook points directly:

* ``input_filters`` rewrite the :class:`~repro.sim.sensors.SensorFrame`
  before the agent sees it (**Input FI**);
* ``output_filters`` rewrite the :class:`~repro.sim.physics.VehicleControl`
  after the agent produced it (**Output FI**).

Filters are plain callables, so the injection harness can install and
remove fault models without the agent knowing.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .channel import Channel, Packet
from .physics import VehicleControl
from .sensors import SensorFrame

__all__ = ["Agent", "AgentClient"]


class Agent(Protocol):
    """The driving-agent interface the client drives.

    Implementations live in :mod:`repro.agent.agents`; anything with these
    two methods can be campaigned.
    """

    def reset(self, mission) -> None:
        """Prepare for a new episode (plan the route, clear state)."""

    def step(self, frame: SensorFrame) -> VehicleControl:
        """Map one sensor bundle to one control command."""


InputFilter = Callable[[SensorFrame], SensorFrame]
OutputFilter = Callable[[VehicleControl, int], VehicleControl]


class AgentClient:
    """Runs an agent against the server's channels."""

    def __init__(self, agent: Agent, sensor_channel: Channel, control_channel: Channel):
        self.agent = agent
        self.sensor_channel = sensor_channel
        self.control_channel = control_channel
        self.input_filters: list[InputFilter] = []
        self.output_filters: list[OutputFilter] = []
        self.frames_processed = 0
        self.frames_missed = 0

    def tick(self, frame: int) -> VehicleControl | None:
        """Process any due sensor bundle; returns the command sent, if any."""
        packets = self.sensor_channel.poll(frame)
        if not packets:
            self.frames_missed += 1
            return None
        # Multiple bundles can pile up behind a timing fault; act on the
        # freshest one, as a real stack polling its queue would.
        packet = max(packets, key=lambda p: p.frame)
        bundle: SensorFrame = packet.payload
        for input_filter in self.input_filters:
            bundle = input_filter(bundle)
        control = self.agent.step(bundle)
        for output_filter in self.output_filters:
            control = output_filter(control, frame)
        self.control_channel.send(Packet("control", frame, control))
        self.frames_processed += 1
        return control
