"""Road network model and procedural grid towns.

This module is the stand-in for CARLA's town maps.  A :class:`Town` is a
graph of :class:`Intersection` nodes joined by straight two-lane
:class:`Road` segments (one driving lane per direction, right-hand traffic),
bordered by curbs/sidewalks, with painted lane markings.  It supports the
queries every other subsystem needs:

* *localisation* — which lane a point is on, its station (arc length) and
  signed lateral offset (:meth:`Town.locate`), used by the violation
  detectors and the expert autopilot;
* *surface classification* — vectorised road/curb/off-road labelling of
  point batches (:meth:`Town.classify_points`), used by the renderer to
  rasterise the ground texture;
* *routing* — the directed lane graph (:meth:`Town.route_edges`) plus
  smooth intersection connector curves
  (:meth:`Town.connection_curve`), used by the route planner;
* *spawning* — candidate vehicle poses on lane centrelines
  (:meth:`Town.spawn_points`).

Towns are deterministic given their configuration; the procedural variant
(:func:`build_procedural_town`) draws every sample from the seed baked into
its config, so equal configs always build identical towns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator, NamedTuple

import numpy as np

from .geometry import OrientedBox, Polyline, Transform, Vec2, wrap_angle

__all__ = [
    "SurfaceType",
    "LaneRef",
    "Lane",
    "Road",
    "Intersection",
    "MarkingStripe",
    "Building",
    "LaneLocation",
    "Town",
    "GridTownConfig",
    "ProceduralTownConfig",
    "build_grid_town",
    "build_procedural_town",
    "build_town",
]

# Spacing between consecutive lane-centreline sample points, metres.
WAYPOINT_SPACING = 2.0


class SurfaceType(IntEnum):
    """Ground surface classes, ordered by "drivability"."""

    OFFROAD = 0
    CURB = 1
    ROAD = 2


class LaneRef(NamedTuple):
    """Stable identifier of a lane: road id plus travel direction.

    ``direction`` is ``+1`` for travel from intersection ``a`` to ``b`` and
    ``-1`` for the opposite lane.
    """

    road_id: int
    direction: int


@dataclass(frozen=True)
class MarkingStripe:
    """A painted lane marking, used by the renderer.

    ``polyline`` runs along the stripe centre; ``width`` is the painted
    width in metres.  ``dashed`` stripes are drawn with a 3 m on / 3 m off
    pattern.  ``color`` is an RGB triple in 0..255.
    """

    polyline: Polyline
    width: float
    color: tuple[int, int, int]
    dashed: bool = False


@dataclass(frozen=True)
class Building:
    """A static block-interior building: collision box plus look."""

    box: OrientedBox
    height: float
    color: tuple[int, int, int]


class Waypoint(NamedTuple):
    """A sampled pose on a lane centreline (CARLA-style waypoint)."""

    position: Vec2
    yaw: float
    lane: "Lane"
    station: float

    def next(self, distance: float) -> "Waypoint":
        """The waypoint ``distance`` metres further along the same lane.

        Clamps at the lane end; crossing into a successor lane is the route
        planner's job, not the map's.
        """
        return self.lane.waypoint_at(self.station + distance)


class Lane:
    """One driving lane of a road, with an arc-length parameterised centreline."""

    def __init__(self, ref: LaneRef, road: "Road", centerline: Polyline, width: float):
        self.ref = ref
        self.road = road
        self.centerline = centerline
        self.width = width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lane({self.ref.road_id}, {self.ref.direction:+d}, len={self.length:.1f})"

    @property
    def length(self) -> float:
        """Lane length in metres."""
        return self.centerline.length

    def waypoint_at(self, station: float) -> Waypoint:
        """The lane pose at arc length ``station`` (clamped)."""
        s = min(max(station, 0.0), self.length)
        return Waypoint(self.centerline.point_at(s), self.centerline.heading_at(s), self, s)

    def locate(self, point: Vec2) -> tuple[float, float]:
        """``(station, signed lateral offset)`` of ``point`` w.r.t. the lane."""
        return self.centerline.locate(point)

    @property
    def start_intersection(self) -> int:
        """Id of the intersection this lane leaves from."""
        return self.road.a if self.ref.direction > 0 else self.road.b

    @property
    def end_intersection(self) -> int:
        """Id of the intersection this lane arrives at."""
        return self.road.b if self.ref.direction > 0 else self.road.a


class Road:
    """A straight road segment joining two intersections.

    Carries exactly two lanes (right-hand traffic).  ``half_width`` covers
    the full paved width; the sidewalk extends ``sidewalk_width`` beyond it
    on each side.
    """

    def __init__(
        self,
        road_id: int,
        a: int,
        b: int,
        centerline: Polyline,
        lane_width: float,
        sidewalk_width: float,
    ):
        self.id = road_id
        self.a = a
        self.b = b
        self.centerline = centerline
        self.lane_width = lane_width
        self.sidewalk_width = sidewalk_width
        self.half_width = lane_width  # two lanes, one per side of the centreline
        self.heading = centerline.heading_at(0.0)
        self.length = centerline.length
        # Right-hand traffic: each direction's lane sits to the right of its
        # own travel direction, i.e. lateral -w/2 in the direction's frame.
        forward = centerline.resampled(WAYPOINT_SPACING)
        self.lanes: dict[int, Lane] = {
            +1: Lane(LaneRef(road_id, +1), self, forward.offset(-lane_width / 2.0), lane_width),
            -1: Lane(
                LaneRef(road_id, -1),
                self,
                forward.offset(+lane_width / 2.0).reversed(),
                lane_width,
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Road({self.id}: {self.a}->{self.b}, len={self.length:.1f})"

    def lane(self, direction: int) -> Lane:
        """The lane travelling in ``direction`` (+1: a→b, -1: b→a)."""
        return self.lanes[direction]

    def other_end(self, intersection_id: int) -> int:
        """The intersection at the far end from ``intersection_id``."""
        if intersection_id == self.a:
            return self.b
        if intersection_id == self.b:
            return self.a
        raise ValueError(f"road {self.id} does not touch intersection {intersection_id}")


@dataclass
class Intersection:
    """A square junction area where roads meet."""

    id: int
    center: Vec2
    half_size: float
    road_ids: list[int] = field(default_factory=list)

    def contains(self, point: Vec2) -> bool:
        """Whether ``point`` lies on the junction pavement."""
        return (
            abs(point.x - self.center.x) <= self.half_size
            and abs(point.y - self.center.y) <= self.half_size
        )


@dataclass(frozen=True)
class LaneLocation:
    """Result of :meth:`Town.locate`.

    ``lateral`` is signed, positive to the left of the lane direction, so a
    right-hand drift off the lane is negative.  ``surface`` reflects what is
    under the point regardless of the nearest lane.
    """

    lane: Lane
    station: float
    lateral: float
    surface: SurfaceType
    in_intersection: bool

    @property
    def off_lane(self) -> bool:
        """Whether the point is outside its nearest lane's paint-to-paint span."""
        return abs(self.lateral) > self.lane.width / 2.0


class RouteEdge(NamedTuple):
    """A directed edge of the routing graph: travel one lane end to end."""

    from_intersection: int
    to_intersection: int
    lane_ref: LaneRef
    length: float


class Town:
    """A complete road network with localisation and routing queries."""

    def __init__(
        self,
        intersections: dict[int, Intersection],
        roads: dict[int, Road],
        lane_width: float,
        sidewalk_width: float,
        buildings: list[Building] | None = None,
        name: str = "town",
    ):
        self.name = name
        self.intersections = intersections
        self.roads = roads
        self.lane_width = lane_width
        self.sidewalk_width = sidewalk_width
        self.buildings = list(buildings or [])
        self.lanes: dict[LaneRef, Lane] = {}
        for road in roads.values():
            for lane in road.lanes.values():
                self.lanes[lane.ref] = lane
        self._bounds = self._compute_bounds()
        # Flattened segment arrays over all lane centrelines for fast
        # vectorised nearest-lane queries.
        self._seg_a, self._seg_d, self._seg_len, self._seg_lane, self._seg_station = (
            self._build_segment_index()
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _compute_bounds(self) -> tuple[float, float, float, float]:
        xs: list[float] = []
        ys: list[float] = []
        for inter in self.intersections.values():
            margin = inter.half_size + self.sidewalk_width
            xs.extend([inter.center.x - margin, inter.center.x + margin])
            ys.extend([inter.center.y - margin, inter.center.y + margin])
        for b in self.buildings:
            for c in b.box.corners():
                xs.append(c.x)
                ys.append(c.y)
        return min(xs), min(ys), max(xs), max(ys)

    def _build_segment_index(self):
        starts: list[np.ndarray] = []
        dirs: list[np.ndarray] = []
        lens: list[np.ndarray] = []
        lane_idx: list[np.ndarray] = []
        stations: list[np.ndarray] = []
        self._lane_list = list(self.lanes.values())
        for i, lane in enumerate(self._lane_list):
            xy = np.array([[p.x, p.y] for p in lane.centerline.points])
            seg = np.diff(xy, axis=0)
            seg_len = np.hypot(seg[:, 0], seg[:, 1])
            starts.append(xy[:-1])
            dirs.append(seg / seg_len[:, None])
            lens.append(seg_len)
            lane_idx.append(np.full(len(seg_len), i, dtype=np.int32))
            stations.append(np.concatenate([[0.0], np.cumsum(seg_len)])[:-1])
        seg_a = np.concatenate(starts)
        seg_d = np.concatenate(dirs)
        # Contiguous per-component copies: the nearest-lane query runs per
        # frame, and 1-D contiguous arithmetic beats (N, 2) row math.  The
        # direction components double as cos/sin of the segment heading
        # for the yaw-hint penalty.
        self._seg_ax = seg_a[:, 0].copy()
        self._seg_ay = seg_a[:, 1].copy()
        self._seg_cos = seg_d[:, 0].copy()
        self._seg_sin = seg_d[:, 1].copy()
        return (
            seg_a,
            seg_d,
            np.concatenate(lens),
            np.concatenate(lane_idx),
            np.concatenate(stations),
        )

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the mapped area, metres."""
        return self._bounds

    #: Cell size of the nearest-lane query grid, metres.
    _QUERY_CELL = 16.0

    def _build_query_grid(self):
        """Spatial index for :meth:`nearest_lane`: per-cell segment subsets.

        For a query point ``p`` in a cell with centre ``c``, distance to any
        segment moves by at most ``|p - c| <= halfdiag`` (distance to a set
        is 1-Lipschitz), and the yaw-hint penalty shifts the effective
        distance of a candidate by at most ``lane_width``.  A segment can
        therefore only win the (penalised) argmin if its centre distance is
        within ``dmin(c) + diag + lane_width``; keeping everything inside
        that bound (plus 1 m of slack) guarantees the pruned argmin equals
        the full argmin — same winner, same arithmetic, same bits.  Subset
        arrays are order-preserving contiguous copies, so ties resolve to
        the same first index as the full scan.
        """
        cell = self._QUERY_CELL
        halfdiag = cell * math.sqrt(2.0) / 2.0
        slack = 2.0 * halfdiag + self.lane_width + 1.0
        xmin, ymin, xmax, ymax = self._bounds
        nx = max(1, int(math.ceil((xmax - xmin) / cell)))
        ny = max(1, int(math.ceil((ymax - ymin) / cell)))
        ax, ay = self._seg_ax, self._seg_ay
        cosv, sinv = self._seg_cos, self._seg_sin
        lenv = self._seg_len
        cells = {}
        for j in range(ny):
            cy = ymin + (j + 0.5) * cell
            rely = cy - ay
            for i in range(nx):
                cx = xmin + (i + 0.5) * cell
                relx = cx - ax
                t = np.clip((relx * cosv + rely * sinv) / lenv, 0.0, 1.0)
                ts = t * lenv
                offx = cx - (ax + cosv * ts)
                offy = cy - (ay + sinv * ts)
                d = np.sqrt(offx * offx + offy * offy)
                keep = np.flatnonzero(d <= d.min() + slack)
                cells[(i, j)] = (
                    ax[keep].copy(),
                    ay[keep].copy(),
                    cosv[keep].copy(),
                    sinv[keep].copy(),
                    lenv[keep].copy(),
                    self._seg_station[keep].copy(),
                    self._seg_lane[keep].copy(),
                )
        self._query_grid = (xmin, ymin, nx, ny, cells)
        return self._query_grid

    def _segment_arrays(self, px: float, py: float):
        """The segment subset covering ``(px, py)`` (full set off-grid)."""
        try:
            grid = self._query_grid
        except AttributeError:
            grid = self._build_query_grid()
        xmin, ymin, nx, ny, cells = grid
        i = int((px - xmin) / self._QUERY_CELL)
        j = int((py - ymin) / self._QUERY_CELL)
        if 0 <= i < nx and 0 <= j < ny and px >= xmin and py >= ymin:
            return cells[(i, j)]
        return (
            self._seg_ax,
            self._seg_ay,
            self._seg_cos,
            self._seg_sin,
            self._seg_len,
            self._seg_station,
            self._seg_lane,
        )

    def nearest_lane(self, point: Vec2, yaw_hint: float | None = None) -> tuple[Lane, float, float]:
        """The lane nearest to ``point``.

        With ``yaw_hint`` given, lanes whose direction opposes the hint are
        penalised so a vehicle is matched to its own side of the road.
        Returns ``(lane, station, signed lateral offset)``.
        """
        # Per-component contiguous arithmetic over the grid-pruned segment
        # subset; identical expressions to the former full-scan einsum
        # formulation, evaluated column-wise.
        px, py = point.x, point.y
        ax, ay, cosv, sinv, lenv, stav, lanev = self._segment_arrays(px, py)
        relx = px - ax
        rely = py - ay
        t = np.clip((relx * cosv + rely * sinv) / lenv, 0.0, 1.0)
        ts = t * lenv
        offx = px - (ax + cosv * ts)
        offy = py - (ay + sinv * ts)
        d2 = offx * offx + offy * offy
        if yaw_hint is not None and not math.isfinite(yaw_hint):
            # Corrupted heading measurements degrade to the no-hint query.
            yaw_hint = None
        if yaw_hint is not None:
            # Half a lane width of penalty for driving against the segment.
            # Misalignment beyond 90 degrees is exactly a negative cosine
            # of (segment heading - hint), and the segment direction *is*
            # (cos, sin) of its heading — no per-query array trigonometry.
            ch, sh = math.cos(yaw_hint), math.sin(yaw_hint)
            against = cosv * ch + sinv * sh < 0.0
            d2 = d2 + np.where(against, self.lane_width**2, 0.0)
        k = int(np.argmin(d2))
        station = float(stav[k] + t[k] * lenv[k])
        lateral = float(cosv[k] * offy[k] - sinv[k] * offx[k])
        return self._lane_list[lanev[k]], station, lateral

    def locate(self, point: Vec2, yaw_hint: float | None = None) -> LaneLocation:
        """Full localisation of a world point (lane, station, offset, surface)."""
        lane, station, lateral = self.nearest_lane(point, yaw_hint)
        surface = self.classify_point(point.x, point.y)
        in_inter = any(i.contains(point) for i in self.intersections.values())
        return LaneLocation(lane, station, lateral, surface, in_inter)

    def classify_points(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised surface classification of ``xy`` (shape ``(N, 2)``).

        Returns an array of :class:`SurfaceType` values (uint8).  Roads and
        junction cores label ``ROAD``; the sidewalk band around them labels
        ``CURB``; everything else (including building footprints) is
        ``OFFROAD``.
        """
        pts = np.asarray(xy, dtype=np.float64)
        out = np.zeros(len(pts), dtype=np.uint8)
        curb = np.zeros(len(pts), dtype=bool)
        road = np.zeros(len(pts), dtype=bool)
        sw = self.sidewalk_width
        for r in self.roads.values():
            start = r.centerline.points[0]
            c, s = math.cos(r.heading), math.sin(r.heading)
            dx = pts[:, 0] - start.x
            dy = pts[:, 1] - start.y
            lx = dx * c + dy * s
            ly = -dx * s + dy * c
            along = (lx >= 0.0) & (lx <= r.length)
            road |= along & (np.abs(ly) <= r.half_width)
            curb |= along & (np.abs(ly) <= r.half_width + sw)
        for inter in self.intersections.values():
            dx = np.abs(pts[:, 0] - inter.center.x)
            dy = np.abs(pts[:, 1] - inter.center.y)
            road |= (dx <= inter.half_size) & (dy <= inter.half_size)
            curb |= (dx <= inter.half_size + sw) & (dy <= inter.half_size + sw)
        out[curb] = int(SurfaceType.CURB)
        out[road] = int(SurfaceType.ROAD)
        return out

    def _surface_params(self):
        """Flattened per-road / per-intersection scalars for point queries.

        Cached lazily; iteration order matches :meth:`classify_points` so
        the scalar and vectorised paths agree bit for bit.
        """
        roads = tuple(
            (
                r.centerline.points[0].x,
                r.centerline.points[0].y,
                math.cos(r.heading),
                math.sin(r.heading),
                r.length,
                r.half_width,
            )
            for r in self.roads.values()
        )
        inters = tuple(
            (i.center.x, i.center.y, i.half_size) for i in self.intersections.values()
        )
        self._surface_param_cache = (roads, inters)
        return self._surface_param_cache

    def classify_point(self, x: float, y: float) -> SurfaceType:
        """Scalar fast path of :meth:`classify_points` for one point.

        Same classification with the same arithmetic, minus the numpy
        array round-trip — single-point queries (violation monitor,
        autopilot probes) run every frame, where the per-call array
        allocations dominate.  ``ROAD`` short-circuits: it wins over
        ``CURB`` regardless of any later surface match.
        """
        try:
            roads, inters = self._surface_param_cache
        except AttributeError:
            roads, inters = self._surface_params()
        sw = self.sidewalk_width
        curb = False
        for sx, sy, c, s, length, half_width in roads:
            dx = x - sx
            dy = y - sy
            lx = dx * c + dy * s
            if lx < 0.0 or lx > length:
                continue
            ly = -dx * s + dy * c
            aly = abs(ly)
            if aly <= half_width:
                return SurfaceType.ROAD
            if aly <= half_width + sw:
                curb = True
        for ix, iy, half in inters:
            dx = abs(x - ix)
            dy = abs(y - iy)
            if dx <= half and dy <= half:
                return SurfaceType.ROAD
            if dx <= half + sw and dy <= half + sw:
                curb = True
        return SurfaceType.CURB if curb else SurfaceType.OFFROAD

    def is_on_road(self, point: Vec2) -> bool:
        """Whether ``point`` is on drivable pavement."""
        return self.classify_point(point.x, point.y) == SurfaceType.ROAD

    def building_box_pack(self) -> tuple[np.ndarray, tuple]:
        """Packed building collision boxes for batched ray tests.

        Returns ``(packed, prune)`` where ``packed`` is the
        :func:`~repro.sim.geometry.pack_boxes` array over all building
        boxes and ``prune`` holds per-building
        ``(center_x, center_y, max(half_length, half_width))`` tuples for
        the LIDAR's range prune.  Buildings are immutable, so both are
        computed once per town and reused by every sensor frame.
        """
        try:
            return self._building_pack_cache
        except AttributeError:
            from .geometry import pack_boxes

            packed = pack_boxes([b.box for b in self.buildings])
            prune = tuple(
                (b.box.center.x, b.box.center.y, max(b.box.half_length, b.box.half_width))
                for b in self.buildings
            )
            self._building_pack_cache = (packed, prune)
            return self._building_pack_cache

    # ------------------------------------------------------------------
    # Routing support
    # ------------------------------------------------------------------
    def route_edges(self) -> list[RouteEdge]:
        """All directed lane edges of the routing graph."""
        edges = []
        for lane in self.lanes.values():
            edges.append(
                RouteEdge(lane.start_intersection, lane.end_intersection, lane.ref, lane.length)
            )
        return edges

    def lane_successors(self, lane: Lane) -> list[Lane]:
        """Lanes reachable from the end of ``lane`` through its junction.

        U-turns (the same road's opposite lane) are excluded — a 180° flip
        inside a junction is tighter than a car's minimum turning radius —
        unless the junction is a dead end, where the U-turn is all there is.
        """
        if not hasattr(self, "_successor_cache"):
            outgoing: dict[int, list[Lane]] = {i: [] for i in self.intersections}
            for candidate in self.lanes.values():
                outgoing[candidate.start_intersection].append(candidate)
            cache: dict[LaneRef, list[Lane]] = {}
            for owner in self.lanes.values():
                reverse_ref = LaneRef(owner.ref.road_id, -owner.ref.direction)
                options = [
                    out
                    for out in outgoing[owner.end_intersection]
                    if out.ref != reverse_ref
                ]
                if not options:
                    options = [self.lanes[reverse_ref]]
                cache[owner.ref] = options
            self._successor_cache = cache
        return self._successor_cache[lane.ref]

    def lane_graph_strongly_connected(self) -> bool:
        """Whether every lane can reach every other lane without U-turns.

        Single-block towns fail this (two disjoint circulation cycles), so
        :func:`build_grid_town` checks it at construction time.
        """
        lanes = list(self.lanes.values())
        if not lanes:
            return True
        # Forward reachability from lane 0 plus reverse reachability: for a
        # digraph, both covering all nodes <=> one strongly connected
        # component containing all lanes.
        def reach(start: Lane, forward: bool) -> set[LaneRef]:
            seen = {start.ref}
            stack = [start]
            predecessors: dict[LaneRef, list[Lane]] = {}
            if not forward:
                for lane in lanes:
                    for nxt in self.lane_successors(lane):
                        predecessors.setdefault(nxt.ref, []).append(lane)
            while stack:
                cur = stack.pop()
                neighbours = (
                    self.lane_successors(cur)
                    if forward
                    else predecessors.get(cur.ref, [])
                )
                for nxt in neighbours:
                    if nxt.ref not in seen:
                        seen.add(nxt.ref)
                        stack.append(nxt)
            return seen

        n = len(lanes)
        return len(reach(lanes[0], True)) == n and len(reach(lanes[0], False)) == n

    def connection_curve(self, incoming: Lane, outgoing: Lane, spacing: float = 1.0) -> Polyline:
        """Smooth connector through an intersection between two lanes.

        Quadratic Bézier from the incoming lane's end pose to the outgoing
        lane's start pose; the control point is the intersection of their
        heading lines (falls back to the midpoint when nearly parallel).
        """
        p0 = incoming.centerline.point_at(incoming.length)
        h0 = incoming.centerline.heading_at(incoming.length)
        p2 = outgoing.centerline.point_at(0.0)
        h2 = outgoing.centerline.heading_at(0.0)
        d0 = Vec2.from_heading(h0)
        d2 = Vec2.from_heading(h2)
        denom = d0.cross(d2)
        if abs(denom) < 1e-6:
            p1 = Vec2((p0.x + p2.x) / 2.0, (p0.y + p2.y) / 2.0)
        else:
            t = (p2 - p0).cross(d2) / denom
            p1 = p0 + d0 * t
        chord = p0.distance_to(p2)
        n = max(3, int(math.ceil(chord / spacing)) + 1)
        ts = np.linspace(0.0, 1.0, n)
        pts = [
            Vec2(
                (1 - t) ** 2 * p0.x + 2 * (1 - t) * t * p1.x + t**2 * p2.x,
                (1 - t) ** 2 * p0.y + 2 * (1 - t) * t * p1.y + t**2 * p2.y,
            )
            for t in ts
        ]
        return Polyline(pts)

    def turn_direction(self, incoming: Lane, outgoing: Lane) -> str:
        """Classify the manoeuvre between two lanes: LEFT/RIGHT/STRAIGHT."""
        h_in = incoming.centerline.heading_at(incoming.length)
        h_out = outgoing.centerline.heading_at(0.0)
        d = wrap_angle(h_out - h_in)
        if d > math.pi / 4.0:
            return "LEFT"
        if d < -math.pi / 4.0:
            return "RIGHT"
        return "STRAIGHT"

    # ------------------------------------------------------------------
    # Spawning and markings
    # ------------------------------------------------------------------
    def spawn_points(self, spacing: float = 12.0, margin: float = 8.0) -> list[Waypoint]:
        """Candidate vehicle spawn poses along all lanes.

        ``margin`` keeps spawns away from the lane ends so freshly spawned
        vehicles are not inside junctions.
        """
        out: list[Waypoint] = []
        for lane in self.lanes.values():
            s = margin
            while s <= lane.length - margin:
                out.append(lane.waypoint_at(s))
                s += spacing
        return out

    def markings(self) -> list[MarkingStripe]:
        """All painted stripes: yellow centre lines and white edge lines."""
        stripes: list[MarkingStripe] = []
        for road in self.roads.values():
            cl = road.centerline
            stripes.append(MarkingStripe(cl, 0.30, (200, 180, 40), dashed=False))
            for side in (+1, -1):
                edge = cl.offset(side * (road.half_width - 0.15))
                stripes.append(MarkingStripe(edge, 0.20, (230, 230, 230), dashed=False))
        return stripes

    def iter_lanes(self) -> Iterator[Lane]:
        """Iterate all lanes in a stable order."""
        for ref in sorted(self.lanes):
            yield self.lanes[ref]


@dataclass(frozen=True)
class GridTownConfig:
    """Parameters of the procedural grid town.

    ``rows``/``cols`` count intersections; blocks between them are
    ``block_size`` metres apart.  Defaults give a compact town a mission can
    cross in under a minute at urban speeds, mirroring CARLA Town01-style
    layouts at reduced scale.
    """

    rows: int = 4
    cols: int = 4
    block_size: float = 80.0
    lane_width: float = 3.5
    sidewalk_width: float = 2.0
    with_buildings: bool = True
    building_height: float = 9.0
    name: str = "grid-town"

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("grid town needs at least a 2x2 intersection grid")
        if self.rows * self.cols < 6:
            # A single-block (2x2) town's U-turn-free lane graph splits into
            # two disjoint circulation cycles: some missions become
            # unroutable.  Require at least two blocks.
            raise ValueError(
                "grid town needs at least 2x3 intersections for full lane-graph "
                "connectivity (a single block cannot be turned around on)"
            )
        if self.block_size < 6.0 * self.lane_width:
            raise ValueError("blocks too small for the configured lane width")


def build_grid_town(config: GridTownConfig | None = None) -> Town:
    """Construct the deterministic grid town described by ``config``."""
    cfg = config or GridTownConfig()
    half = cfg.lane_width  # road half width (two lanes)
    # Junction squares span two lane widths past the centre so that the
    # tightest (right) turn keeps a radius the bicycle model can actually
    # drive (min radius ≈ wheelbase / tan(max steer) ≈ 3.9 m).
    inter_half = 2.0 * cfg.lane_width

    intersections: dict[int, Intersection] = {}

    def node_id(i: int, j: int) -> int:
        return j * cfg.cols + i

    for j in range(cfg.rows):
        for i in range(cfg.cols):
            center = Vec2(i * cfg.block_size, j * cfg.block_size)
            intersections[node_id(i, j)] = Intersection(node_id(i, j), center, inter_half)

    roads: dict[int, Road] = {}
    next_road_id = 0

    def add_road(a: int, b: int) -> None:
        nonlocal next_road_id
        ca = intersections[a].center
        cb = intersections[b].center
        direction = (cb - ca).normalized()
        start = ca + direction * inter_half
        end = cb - direction * inter_half
        centerline = Polyline([start, end])
        road = Road(next_road_id, a, b, centerline, cfg.lane_width, cfg.sidewalk_width)
        roads[next_road_id] = road
        intersections[a].road_ids.append(next_road_id)
        intersections[b].road_ids.append(next_road_id)
        next_road_id += 1

    for j in range(cfg.rows):
        for i in range(cfg.cols):
            if i + 1 < cfg.cols:
                add_road(node_id(i, j), node_id(i + 1, j))
            if j + 1 < cfg.rows:
                add_road(node_id(i, j), node_id(i, j + 1))

    buildings: list[Building] = []
    if cfg.with_buildings:
        # One building per block interior, inset from the sidewalks.  Colours
        # cycle deterministically so renders are stable across runs.
        palette = [(150, 110, 95), (120, 120, 135), (160, 140, 110), (110, 130, 120)]
        inset = half + cfg.sidewalk_width + 3.0
        for j in range(cfg.rows - 1):
            for i in range(cfg.cols - 1):
                cx = (i + 0.5) * cfg.block_size
                cy = (j + 0.5) * cfg.block_size
                half_ext = cfg.block_size / 2.0 - inset
                if half_ext < 4.0:
                    continue
                color = palette[(i + j) % len(palette)]
                buildings.append(
                    Building(
                        OrientedBox(Vec2(cx, cy), 0.0, half_ext * 0.7, half_ext * 0.7),
                        cfg.building_height,
                        color,
                    )
                )

    town = Town(
        intersections,
        roads,
        cfg.lane_width,
        cfg.sidewalk_width,
        buildings,
        name=f"{cfg.name}-{cfg.rows}x{cfg.cols}",
    )
    if not town.lane_graph_strongly_connected():
        raise ValueError(
            f"grid town {cfg.rows}x{cfg.cols} has a disconnected lane graph"
        )
    return town


@dataclass(frozen=True)
class ProceduralTownConfig:
    """Parameters of a *sampled* road network.

    Starts from the same ``rows`` x ``cols`` intersection lattice as
    :class:`GridTownConfig` and then, driven entirely by ``seed``:

    * removes a fraction of the grid's roads (``road_density`` is the kept
      fraction), skipping any removal that would leave a dead-end junction
      or break the U-turn-free lane graph's strong connectivity — every
      sampled town stays fully routable;
    * fills block interiors with buildings at ``building_density``
      probability, with per-building size/height jitter.

    Equal configs always build identical towns (all randomness flows from
    ``seed``), so the config is safe to serialise into campaign specs and
    hash into episode fingerprints, exactly like :class:`GridTownConfig`.
    """

    rows: int = 3
    cols: int = 3
    block_size: float = 70.0
    lane_width: float = 3.5
    sidewalk_width: float = 2.0
    road_density: float = 0.85
    building_density: float = 0.7
    building_height: float = 9.0
    seed: int = 0
    name: str = "proc-town"

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("procedural town needs at least a 2x2 intersection grid")
        if self.rows * self.cols < 6:
            raise ValueError(
                "procedural town needs at least 2x3 intersections for full "
                "lane-graph connectivity (a single block cannot be turned around on)"
            )
        if self.block_size < 6.0 * self.lane_width:
            raise ValueError("blocks too small for the configured lane width")
        if not 0.0 < self.road_density <= 1.0:
            raise ValueError("road_density must be in (0, 1]")
        if not 0.0 <= self.building_density <= 1.0:
            raise ValueError("building_density must be in [0, 1]")
        if self.building_height <= 0.0:
            raise ValueError("building_height must be positive")


def build_procedural_town(config: ProceduralTownConfig) -> Town:
    """Sample the road network described by ``config`` (deterministic).

    Roads are dropped one at a time in a seeded random order; a drop is
    kept only if both endpoints retain degree >= 2 *and* the resulting
    U-turn-free lane graph stays strongly connected, so every emitted town
    passes the same routability invariant :func:`build_grid_town` enforces.
    """
    cfg = config
    rng = np.random.default_rng(cfg.seed)
    inter_half = 2.0 * cfg.lane_width

    def node_id(i: int, j: int) -> int:
        return j * cfg.cols + i

    centers = {
        node_id(i, j): Vec2(i * cfg.block_size, j * cfg.block_size)
        for j in range(cfg.rows)
        for i in range(cfg.cols)
    }
    # The full grid's edge list, in the same order build_grid_town adds
    # roads; edges are (a, b) intersection-id pairs.
    edges: list[tuple[int, int]] = []
    for j in range(cfg.rows):
        for i in range(cfg.cols):
            if i + 1 < cfg.cols:
                edges.append((node_id(i, j), node_id(i + 1, j)))
            if j + 1 < cfg.rows:
                edges.append((node_id(i, j), node_id(i, j + 1)))

    def build(edge_list: list[tuple[int, int]], buildings: list[Building]) -> Town:
        intersections = {
            nid: Intersection(nid, center, inter_half)
            for nid, center in centers.items()
        }
        roads: dict[int, Road] = {}
        for road_id, (a, b) in enumerate(edge_list):
            ca, cb = intersections[a].center, intersections[b].center
            direction = (cb - ca).normalized()
            centerline = Polyline([ca + direction * inter_half, cb - direction * inter_half])
            roads[road_id] = Road(road_id, a, b, centerline, cfg.lane_width, cfg.sidewalk_width)
            intersections[a].road_ids.append(road_id)
            intersections[b].road_ids.append(road_id)
        return Town(
            intersections,
            roads,
            cfg.lane_width,
            cfg.sidewalk_width,
            buildings,
            name=f"{cfg.name}-{cfg.rows}x{cfg.cols}-s{cfg.seed}",
        )

    # Thin the grid: consider every edge for removal in a seeded random
    # order; each candidate drop must keep the lane graph routable.
    kept = list(edges)
    if cfg.road_density < 1.0:
        for idx in rng.permutation(len(edges)):
            candidate = edges[int(idx)]
            if candidate not in kept:
                continue
            if rng.random() >= 1.0 - cfg.road_density:
                continue
            trial = [e for e in kept if e != candidate]
            degrees: dict[int, int] = {nid: 0 for nid in centers}
            for a, b in trial:
                degrees[a] += 1
                degrees[b] += 1
            if min(degrees.values()) < 2:
                continue
            if build(trial, []).lane_graph_strongly_connected():
                kept = trial

    # Buildings: at most one per block interior, present with probability
    # building_density, with sampled footprint and height.
    buildings: list[Building] = []
    palette = [(150, 110, 95), (120, 120, 135), (160, 140, 110), (110, 130, 120)]
    inset = cfg.lane_width + cfg.sidewalk_width + 3.0
    for j in range(cfg.rows - 1):
        for i in range(cfg.cols - 1):
            half_ext = cfg.block_size / 2.0 - inset
            if half_ext < 4.0:
                continue
            # Draw per-block samples unconditionally so the presence of
            # one building never shifts another block's geometry.
            present = rng.random() < cfg.building_density
            scale_l = float(rng.uniform(0.5, 0.85))
            scale_w = float(rng.uniform(0.5, 0.85))
            height = cfg.building_height * float(rng.uniform(0.6, 1.6))
            color = palette[int(rng.integers(len(palette)))]
            if not present:
                continue
            cx = (i + 0.5) * cfg.block_size
            cy = (j + 0.5) * cfg.block_size
            buildings.append(
                Building(
                    OrientedBox(Vec2(cx, cy), 0.0, half_ext * scale_l, half_ext * scale_w),
                    height,
                    color,
                )
            )

    town = build(kept, buildings)
    if not town.lane_graph_strongly_connected():  # pragma: no cover - drop loop invariant
        raise ValueError(
            f"procedural town {cfg.name!r} (seed {cfg.seed}) has a disconnected lane graph"
        )
    return town


def build_town(config: "GridTownConfig | ProceduralTownConfig") -> Town:
    """Build the town for any supported town config (dispatch by type)."""
    if isinstance(config, ProceduralTownConfig):
        return build_procedural_town(config)
    if isinstance(config, GridTownConfig):
        return build_grid_town(config)
    raise TypeError(f"unsupported town config type {type(config).__name__}")
