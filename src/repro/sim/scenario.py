"""Missions and scenarios: the experiment workloads.

A :class:`Mission` is one navigation task — start pose, goal point, time
limit — mirroring the CARLA benchmark tasks the paper's agent was evaluated
on.  A :class:`Scenario` adds the environment around the mission: town
configuration, weather, NPC traffic density and the seed that makes the
whole episode reproducible.

:func:`generate_missions` draws varied missions of a requested difficulty
from a seeded RNG; campaign code uses it to build scenario suites so every
fault-injector configuration is evaluated across the *same* missions.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

import numpy as np

from .actors import BehaviorSpec
from .geometry import Transform, Vec2
from .town import GridTownConfig, ProceduralTownConfig, Town, Waypoint

__all__ = [
    "Mission",
    "NPCSpec",
    "Scenario",
    "derive_scenario_seed",
    "generate_missions",
    "make_scenarios",
    "town_config_from_dict",
    "town_config_to_dict",
]

def town_config_to_dict(config: GridTownConfig | ProceduralTownConfig) -> dict:
    """Canonical JSON form of a town config.

    Numeric fields coerce to their canonical JSON type (80 and 80.0 are
    dataclass-equal but serialise differently), so equal configs always
    emit identical JSON — campaign-spec hashes are content hashes.
    Procedural configs carry a ``"kind": "procedural"`` discriminator;
    grid configs keep the historical key set, so existing specs hash
    identically.
    """
    if isinstance(config, ProceduralTownConfig):
        return {
            "kind": "procedural",
            "rows": int(config.rows),
            "cols": int(config.cols),
            "block_size": float(config.block_size),
            "lane_width": float(config.lane_width),
            "sidewalk_width": float(config.sidewalk_width),
            "road_density": float(config.road_density),
            "building_density": float(config.building_density),
            "building_height": float(config.building_height),
            "seed": int(config.seed),
            "name": str(config.name),
        }
    return {
        "rows": int(config.rows),
        "cols": int(config.cols),
        "block_size": float(config.block_size),
        "lane_width": float(config.lane_width),
        "sidewalk_width": float(config.sidewalk_width),
        "with_buildings": bool(config.with_buildings),
        "building_height": float(config.building_height),
        "name": str(config.name),
    }


def town_config_from_dict(data: dict) -> GridTownConfig | ProceduralTownConfig:
    """Rebuild a town config written by :func:`town_config_to_dict`.

    Dispatches on the ``"kind"`` discriminator: absent (or ``"grid"``)
    parses as :class:`GridTownConfig`, ``"procedural"`` as
    :class:`ProceduralTownConfig`.
    """
    if not isinstance(data, dict):
        raise TypeError(f"town config must be an object, got {type(data).__name__}")
    kind = data.get("kind", "grid")
    fields = {k: v for k, v in data.items() if k != "kind"}
    if kind == "procedural":
        return ProceduralTownConfig(**fields)
    if kind == "grid":
        return GridTownConfig(**fields)
    raise ValueError(f"unknown town config kind {kind!r} (expected 'grid' or 'procedural')")


def derive_scenario_seed(suite_seed: int, index: int) -> int:
    """A collision-free per-scenario episode seed.

    Hashes ``(suite_seed, index)`` through SHA-256 and keeps 63 bits, so
    seeds from different suites can never collide the way the old
    ``suite_seed * 1000 + index`` formula did once a suite grew past 1000
    scenarios (or two suites used adjacent seeds).  A cryptographic hash
    (rather than :class:`numpy.random.SeedSequence` internals) keeps the
    derivation identical across numpy versions, which checkpoint
    fingerprints and cross-process suite expansion both rely on.
    """
    digest = hashlib.sha256(f"scenario-seed:{suite_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1

#: Nominal urban cruise speed used to derive mission time limits, m/s.
NOMINAL_SPEED = 5.0


@dataclass(frozen=True)
class Mission:
    """One navigation task for the ego vehicle.

    ``time_limit_s`` is the budget after which the mission counts as failed
    (the paper's MSR is "able to complete a navigation mission in a fixed
    amount of time").  ``success_radius`` is how close to the goal counts
    as arrival.
    """

    start: Transform
    goal: Vec2
    time_limit_s: float
    success_radius: float = 5.0
    name: str = "mission"

    def __post_init__(self) -> None:
        if self.time_limit_s <= 0:
            raise ValueError("time limit must be positive")
        if self.success_radius <= 0:
            raise ValueError("success radius must be positive")

    def straight_line_distance(self) -> float:
        """Crow-flies start-to-goal distance, metres."""
        return self.start.position.distance_to(self.goal)

    def to_dict(self) -> dict:
        """JSON-serialisable form (declarative campaign specs).

        Numerics coerce to canonical JSON types — see
        :func:`town_config_to_dict`.
        """
        return {
            "start": {
                "x": float(self.start.position.x),
                "y": float(self.start.position.y),
                "yaw": float(self.start.yaw),
            },
            "goal": {"x": float(self.goal.x), "y": float(self.goal.y)},
            "time_limit_s": float(self.time_limit_s),
            "success_radius": float(self.success_radius),
            "name": str(self.name),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Mission":
        """Rebuild a mission written by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise TypeError(f"mission must be an object, got {type(data).__name__}")
        unknown = set(data) - {"start", "goal", "time_limit_s", "success_radius", "name"}
        if unknown:
            raise ValueError(f"mission has unknown keys {sorted(unknown)}")
        try:
            start = data["start"]
            goal = data["goal"]
            return cls(
                start=Transform(
                    Vec2(float(start["x"]), float(start["y"])),
                    float(start.get("yaw", 0.0)),
                ),
                goal=Vec2(float(goal["x"]), float(goal["y"])),
                time_limit_s=float(data["time_limit_s"]),
                success_radius=float(data.get("success_radius", 5.0)),
                name=str(data.get("name", "mission")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"mission needs start {{x,y,yaw}}, goal {{x,y}} and "
                f"time_limit_s: {exc!r}"
            ) from None


@dataclass(frozen=True)
class NPCSpec:
    """A scripted NPC vehicle placed at an exact lane position.

    Unlike the seed-scattered background traffic (``n_npc_vehicles``), a
    scripted NPC spawns deterministically at ``station`` metres along the
    lane ``(road_id, direction)`` — how maneuver-conflict scenarios put an
    adversary on a specific junction approach.  ``behavior`` optionally
    attaches a reactive :class:`~repro.sim.actors.BehaviorSpec`.
    """

    road_id: int
    direction: int
    station: float
    target_speed: float = 6.0
    behavior: BehaviorSpec | None = None

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise ValueError("direction must be +1 or -1")
        if self.station < 0.0:
            raise ValueError("station must be non-negative")
        if self.target_speed <= 0.0:
            raise ValueError("target_speed must be positive")

    def to_dict(self) -> dict:
        """Canonical JSON form."""
        return {
            "road_id": int(self.road_id),
            "direction": int(self.direction),
            "station": float(self.station),
            "target_speed": float(self.target_speed),
            "behavior": self.behavior.to_dict() if self.behavior is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NPCSpec":
        """Rebuild a scripted NPC written by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise TypeError(f"npc must be an object, got {type(data).__name__}")
        unknown = set(data) - {"road_id", "direction", "station", "target_speed", "behavior"}
        if unknown:
            raise ValueError(f"npc has unknown keys {sorted(unknown)}")
        behavior = data.get("behavior")
        return cls(
            road_id=int(data["road_id"]),
            direction=int(data["direction"]),
            station=float(data["station"]),
            target_speed=float(data.get("target_speed", 6.0)),
            behavior=BehaviorSpec.from_dict(behavior) if behavior is not None else None,
        )


@dataclass(frozen=True)
class Scenario:
    """A mission plus the world it runs in."""

    mission: Mission
    town_config: GridTownConfig | ProceduralTownConfig = field(default_factory=GridTownConfig)
    weather: str = "ClearNoon"
    n_npc_vehicles: int = 0
    n_pedestrians: int = 0
    seed: int = 0
    name: str = "scenario"
    #: Scripted NPC vehicles (exact placement + optional behavior), on top
    #: of the seed-scattered background traffic.
    npcs: tuple[NPCSpec, ...] = ()

    def with_seed(self, seed: int) -> "Scenario":
        """Copy of this scenario under a different episode seed."""
        return replace(self, seed=seed, name=f"{self.name}-s{seed}")

    def to_dict(self) -> dict:
        """JSON-serialisable form (declarative campaign specs).

        ``npcs`` is emitted only when non-empty, so scenarios without
        scripted NPCs serialise exactly as they always did (spec hashes
        and golden files are stable across the feature's introduction).
        """
        out = {
            "mission": self.mission.to_dict(),
            "town": town_config_to_dict(self.town_config),
            "weather": str(self.weather),
            "n_npc_vehicles": int(self.n_npc_vehicles),
            "n_pedestrians": int(self.n_pedestrians),
            "seed": int(self.seed),
            "name": str(self.name),
        }
        if self.npcs:
            out["npcs"] = [npc.to_dict() for npc in self.npcs]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario written by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise TypeError(f"scenario must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "mission",
            "town",
            "weather",
            "n_npc_vehicles",
            "n_pedestrians",
            "seed",
            "name",
            "npcs",
        }
        if unknown:
            raise ValueError(f"scenario has unknown keys {sorted(unknown)}")
        if "mission" not in data:
            raise ValueError("scenario needs a 'mission' object")
        town = data.get("town")
        try:
            town_config = town_config_from_dict(town) if town is not None else GridTownConfig()
        except TypeError as exc:
            raise ValueError(f"scenario town config: {exc}") from None
        npcs_data = data.get("npcs") or []
        if not isinstance(npcs_data, list):
            raise ValueError("scenario 'npcs' must be an array")
        try:
            npcs = tuple(NPCSpec.from_dict(npc) for npc in npcs_data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"scenario npcs: {exc}") from None
        return cls(
            mission=Mission.from_dict(data["mission"]),
            town_config=town_config,
            weather=str(data.get("weather", "ClearNoon")),
            n_npc_vehicles=int(data.get("n_npc_vehicles", 0)),
            n_pedestrians=int(data.get("n_pedestrians", 0)),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "scenario")),
            npcs=npcs,
        )


def _manhattan(a: Vec2, b: Vec2) -> float:
    return abs(a.x - b.x) + abs(a.y - b.y)


# A route-length oracle maps (start pose, goal) to route metres, or None
# when the pair should be rejected (no feasible route).  Campaign code
# passes the route planner in through this hook; see
# repro.core.campaign.standard_scenarios.


def generate_missions(
    town: Town,
    n: int,
    rng: np.random.Generator,
    min_distance: float = 100.0,
    max_distance: float = 400.0,
    time_factor: float = 1.8,
    route_length_fn=None,
) -> list[Mission]:
    """Draw ``n`` missions with start/goal on lane centrelines.

    Candidate pairs are filtered by *Manhattan* distance, which tracks
    route length on a grid town better than the crow-flies distance.  When
    ``route_length_fn`` is given (normally the route planner, wired in by
    :func:`repro.core.campaign.standard_scenarios`), time limits come from
    the true route length and unreachable or strongly detouring pairs
    (route > 2x the Manhattan estimate) are rejected; otherwise the
    Manhattan estimate itself sets the limit.
    """
    if min_distance >= max_distance:
        raise ValueError("min_distance must be below max_distance")
    spawns = town.spawn_points(spacing=10.0)
    if len(spawns) < 2:
        raise ValueError("town has too few spawn points for missions")
    missions: list[Mission] = []
    attempts = 0
    while len(missions) < n and attempts < 6000:
        attempts += 1
        start_wp: Waypoint = spawns[int(rng.integers(len(spawns)))]
        goal_wp: Waypoint = spawns[int(rng.integers(len(spawns)))]
        dist = _manhattan(start_wp.position, goal_wp.position)
        if not min_distance <= dist <= max_distance:
            continue
        start = Transform(start_wp.position, start_wp.yaw)
        route_estimate = dist
        if route_length_fn is not None:
            route_len = route_length_fn(start, goal_wp.position)
            if route_len is None or route_len > 2.0 * dist:
                continue
            route_estimate = route_len
        time_limit = route_estimate / NOMINAL_SPEED * time_factor + 15.0
        missions.append(
            Mission(
                start=start,
                goal=goal_wp.position,
                time_limit_s=time_limit,
                name=f"mission-{len(missions)}",
            )
        )
    if len(missions) < n:
        raise RuntimeError(
            f"could only generate {len(missions)}/{n} missions within "
            f"[{min_distance}, {max_distance}] m; widen the distance band"
        )
    return missions


def make_scenarios(
    n: int,
    seed: int = 0,
    town_config: GridTownConfig | ProceduralTownConfig | None = None,
    weather: str = "ClearNoon",
    n_npc_vehicles: int = 0,
    n_pedestrians: int = 0,
    min_distance: float = 100.0,
    max_distance: float = 400.0,
    route_length_fn=None,
) -> list[Scenario]:
    """Build a reproducible suite of ``n`` scenarios.

    All scenarios share the town and traffic configuration and differ in
    mission and per-episode seed (derived collision-free by
    :func:`derive_scenario_seed`).  The same ``seed`` always yields the
    same suite, so different fault injectors can be compared on identical
    workloads (paired experiment design).  See
    :func:`repro.core.campaign.standard_scenarios` for the variant that
    wires in the route planner for accurate time limits.
    """
    from .town import build_town  # local import to keep module load light

    cfg = town_config or GridTownConfig()
    town = build_town(cfg)
    rng = np.random.default_rng(seed)
    missions = generate_missions(
        town,
        n,
        rng,
        min_distance=min_distance,
        max_distance=max_distance,
        route_length_fn=route_length_fn,
    )
    return [
        Scenario(
            mission=m,
            town_config=cfg,
            weather=weather,
            n_npc_vehicles=n_npc_vehicles,
            n_pedestrians=n_pedestrians,
            seed=derive_scenario_seed(seed, i),
            name=f"scn-{i}",
        )
        for i, m in enumerate(missions)
    ]
