"""Frame-stamped message channels between simulator server and agent client.

CARLA runs the world server and the driving agent as separate processes
joined by a socket protocol.  We keep the *semantics* of that boundary —
every sensor reading and control command is a discrete, frame-stamped
packet travelling through a channel with explicit delivery times — without
the processes.  This boundary is load-bearing for AVFI: the paper's timing
faults (delay, loss, reordering between the ADA and actuation) are
implemented as :class:`ChannelTransform` hooks installed on these channels.

Delivery model: a packet sent at frame ``f`` is delivered at the first poll
with ``frame >= f + latency`` (default latency 0, i.e. same-frame delivery
in the lockstep loop).  Transforms may increase latency, drop packets,
duplicate them or scramble delivery order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["Packet", "ChannelTransform", "Channel", "ChannelStats"]


@dataclass(frozen=True)
class Packet:
    """One message crossing the server/client boundary.

    ``kind`` names the stream ("sensor", "control"); ``frame`` is the
    simulation frame the payload was produced at; ``payload`` is an
    arbitrary object (sensor bundle or control command).
    """

    kind: str
    frame: int
    payload: Any


class ChannelTransform:
    """Hook that rewrites packet delivery on a channel.

    Subclasses (the timing-fault models, but also benign latency models)
    override :meth:`on_send`.  Returning ``None`` drops the packet;
    returning a list of ``(packet, deliver_frame)`` pairs reschedules it
    (possibly duplicated).
    """

    def on_send(
        self, packet: Packet, deliver_frame: int
    ) -> Optional[list[tuple[Packet, int]]]:
        """Rewrite one send.  Default: deliver unchanged."""
        return [(packet, deliver_frame)]

    def reset(self) -> None:
        """Clear any internal state between episodes."""


@dataclass
class ChannelStats:
    """Counters a channel keeps for diagnostics and fault-activation logs."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    delayed: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.delayed = 0


class Channel:
    """An ordered, frame-addressed packet queue with transform hooks."""

    def __init__(self, name: str, latency_frames: int = 0):
        if latency_frames < 0:
            raise ValueError("latency cannot be negative")
        self.name = name
        self.latency_frames = latency_frames
        self.transforms: list[ChannelTransform] = []
        self.stats = ChannelStats()
        self._heap: list[tuple[int, int, Packet]] = []
        self._tiebreak = itertools.count()

    def add_transform(self, transform: ChannelTransform) -> None:
        """Install a transform; transforms apply in installation order."""
        self.transforms.append(transform)

    def remove_transform(self, transform: ChannelTransform) -> None:
        """Uninstall a transform previously added."""
        self.transforms.remove(transform)

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet``; transforms may drop/delay/duplicate it."""
        self.stats.sent += 1
        deliveries = [(packet, packet.frame + self.latency_frames)]
        for transform in self.transforms:
            next_deliveries: list[tuple[Packet, int]] = []
            for pkt, frame in deliveries:
                result = transform.on_send(pkt, frame)
                if result is None:
                    self.stats.dropped += 1
                    continue
                next_deliveries.extend(result)
            deliveries = next_deliveries
        for pkt, frame in deliveries:
            if frame > pkt.frame + self.latency_frames:
                self.stats.delayed += 1
            heapq.heappush(self._heap, (frame, next(self._tiebreak), pkt))

    def poll(self, frame: int) -> list[Packet]:
        """All packets due at or before ``frame``, in delivery order."""
        out: list[Packet] = []
        while self._heap and self._heap[0][0] <= frame:
            _, _, pkt = heapq.heappop(self._heap)
            out.append(pkt)
        self.stats.delivered += len(out)
        return out

    def poll_latest(self, frame: int) -> Optional[Packet]:
        """The most recent due packet, discarding older ones.

        This models an actuator that always applies the freshest command it
        has received — the hold-and-replay semantics the paper's output
        delay experiment relies on happen naturally at the caller, which
        keeps using the previous command when this returns ``None``.
        """
        packets = self.poll(frame)
        if not packets:
            return None
        return max(packets, key=lambda p: p.frame)

    def pending(self) -> int:
        """Number of packets waiting in flight."""
        return len(self._heap)

    def clear(self) -> None:
        """Drop all in-flight packets and reset transforms, stats and the
        delivery tiebreak counter.

        Resetting ``_tiebreak`` matters for replay fidelity: the counter
        participates in heap ordering whenever two packets share a
        delivery frame, so a cleared channel must hand out the same
        tiebreak sequence a freshly constructed one would — otherwise a
        reused channel delivers reordered duplicates differently than the
        first run.
        """
        self._heap.clear()
        self.stats.reset()
        self._tiebreak = itertools.count()
        for transform in self.transforms:
            transform.reset()


class FixedLatency(ChannelTransform):
    """Benign constant extra latency (network model, not a fault)."""

    def __init__(self, frames: int):
        if frames < 0:
            raise ValueError("latency cannot be negative")
        self.frames = frames

    def on_send(self, packet: Packet, deliver_frame: int):
        return [(packet, deliver_frame + self.frames)]
