"""Planar geometry primitives for the world simulator.

The simulator models an urban world on the ground plane.  Everything here is
2-D: positions are metres in a fixed world frame (x east, y north), headings
are radians counter-clockwise from +x.  The renderer adds the third dimension
(actor heights, camera pitch) on top of these primitives.

Conventions
-----------
* ``yaw`` is always wrapped to ``(-pi, pi]`` by :func:`wrap_angle`.
* A :class:`Transform` maps *local* coordinates (x forward, y left) to world
  coordinates, matching the vehicle body frame used by the physics model.
* :class:`OrientedBox` is the collision primitive for vehicles, pedestrians
  and static obstacles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Vec2",
    "Transform",
    "OrientedBox",
    "Polyline",
    "wrap_angle",
    "angle_diff",
    "point_segment_distance",
    "project_on_segment",
    "segments_intersect",
    "pack_boxes",
    "batch_ray_hits",
    "pad_box_packs",
    "batch_ray_hits_multi",
]

TWO_PI = 2.0 * math.pi


def wrap_angle(angle: float) -> float:
    """Wrap an angle in radians to the interval ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def angle_diff(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` between two angles, in radians."""
    return wrap_angle(a - b)


@dataclass(frozen=True)
class Vec2:
    """Immutable 2-D vector with the handful of operations the sim needs."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt in hot paths)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction; zero vector maps to +x."""
        n = self.norm()
        if n < 1e-12:
            return Vec2(1.0, 0.0)
        return Vec2(self.x / n, self.y / n)

    def heading(self) -> float:
        """Angle of the vector from +x, radians in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """Vector rotated counter-clockwise by ``angle`` radians."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def perp(self) -> "Vec2":
        """Counter-clockwise perpendicular (left normal)."""
        return Vec2(-self.y, self.x)

    def as_array(self) -> np.ndarray:
        """The vector as a ``float64`` numpy array of shape ``(2,)``."""
        return np.array([self.x, self.y], dtype=np.float64)

    @staticmethod
    def from_array(arr: Sequence[float]) -> "Vec2":
        """Build a :class:`Vec2` from any two-element sequence."""
        return Vec2(float(arr[0]), float(arr[1]))

    @staticmethod
    def from_heading(angle: float, length: float = 1.0) -> "Vec2":
        """Unit (or scaled) vector pointing along ``angle``."""
        return Vec2(math.cos(angle) * length, math.sin(angle) * length)


@dataclass(frozen=True)
class Transform:
    """Rigid 2-D pose: translation plus heading.

    Local frame convention matches the vehicle body frame: +x forward,
    +y to the left of the vehicle.
    """

    position: Vec2
    yaw: float = 0.0

    def to_world(self, local: Vec2) -> Vec2:
        """Map a point expressed in this pose's local frame to world frame."""
        return self.position + local.rotated(self.yaw)

    def to_local(self, world: Vec2) -> Vec2:
        """Map a world-frame point into this pose's local frame."""
        return (world - self.position).rotated(-self.yaw)

    def forward(self) -> Vec2:
        """Unit vector along the pose heading."""
        return Vec2.from_heading(self.yaw)

    def left(self) -> Vec2:
        """Unit vector pointing to the local left."""
        return Vec2.from_heading(self.yaw + math.pi / 2.0)

    def compose(self, child: "Transform") -> "Transform":
        """Pose of ``child`` (expressed locally) in the world frame."""
        return Transform(self.to_world(child.position), wrap_angle(self.yaw + child.yaw))


def project_on_segment(point: Vec2, a: Vec2, b: Vec2) -> tuple[float, Vec2]:
    """Project ``point`` on segment ``a``-``b``.

    Returns ``(t, closest)`` where ``t`` in ``[0, 1]`` is the normalised
    position along the segment and ``closest`` the nearest point on it.
    """
    ab = b - a
    denom = ab.norm_sq()
    if denom < 1e-18:
        return 0.0, a
    t = (point - a).dot(ab) / denom
    t = min(1.0, max(0.0, t))
    return t, a + ab * t


def point_segment_distance(point: Vec2, a: Vec2, b: Vec2) -> float:
    """Euclidean distance from ``point`` to segment ``a``-``b``."""
    _, closest = project_on_segment(point, a, b)
    return point.distance_to(closest)


def _orientation(a: Vec2, b: Vec2, c: Vec2) -> float:
    return (b - a).cross(c - a)


def segments_intersect(a1: Vec2, a2: Vec2, b1: Vec2, b2: Vec2) -> bool:
    """Whether closed segments ``a1a2`` and ``b1b2`` intersect."""
    d1 = _orientation(b1, b2, a1)
    d2 = _orientation(b1, b2, a2)
    d3 = _orientation(a1, a2, b1)
    d4 = _orientation(a1, a2, b2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
        return True

    def on_segment(p: Vec2, q: Vec2, r: Vec2) -> bool:
        return (
            min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
            and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
        )

    if abs(d1) < 1e-12 and on_segment(b1, a1, b2):
        return True
    if abs(d2) < 1e-12 and on_segment(b1, a2, b2):
        return True
    if abs(d3) < 1e-12 and on_segment(a1, b1, a2):
        return True
    if abs(d4) < 1e-12 and on_segment(a1, b2, a2):
        return True
    return False


class OrientedBox:
    """Oriented bounding box on the ground plane.

    The collision primitive for every actor.  ``half_length`` extends along
    the local +x (heading) axis and ``half_width`` along local +y.
    """

    __slots__ = ("center", "yaw", "half_length", "half_width")

    def __init__(self, center: Vec2, yaw: float, half_length: float, half_width: float):
        if half_length <= 0 or half_width <= 0:
            raise ValueError("box extents must be positive")
        self.center = center
        self.yaw = yaw
        self.half_length = half_length
        self.half_width = half_width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrientedBox(center=({self.center.x:.2f}, {self.center.y:.2f}), "
            f"yaw={self.yaw:.2f}, hl={self.half_length}, hw={self.half_width})"
        )

    def corners(self) -> list[Vec2]:
        """The four corners, counter-clockwise starting front-left."""
        f = Vec2.from_heading(self.yaw, self.half_length)
        l = Vec2.from_heading(self.yaw + math.pi / 2.0, self.half_width)
        c = self.center
        return [c + f + l, c - f + l, c - f - l, c + f - l]

    def contains_point(self, point: Vec2) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the box."""
        local = (point - self.center).rotated(-self.yaw)
        return abs(local.x) <= self.half_length + 1e-12 and abs(local.y) <= self.half_width + 1e-12

    def _axes(self) -> tuple[Vec2, Vec2]:
        return Vec2.from_heading(self.yaw), Vec2.from_heading(self.yaw + math.pi / 2.0)

    def overlaps(self, other: "OrientedBox") -> bool:
        """Separating-axis overlap test against another box.

        Hot path for the collision monitor: the four axis headings are
        computed once and reused as plain floats (the naive form repeats
        the trigonometry per axis), with identical arithmetic per axis.
        """
        sfx, sfy = math.cos(self.yaw), math.sin(self.yaw)
        slx, sly = (
            math.cos(self.yaw + math.pi / 2.0),
            math.sin(self.yaw + math.pi / 2.0),
        )
        ofx, ofy = math.cos(other.yaw), math.sin(other.yaw)
        olx, oly = (
            math.cos(other.yaw + math.pi / 2.0),
            math.sin(other.yaw + math.pi / 2.0),
        )
        dx = other.center.x - self.center.x
        dy = other.center.y - self.center.y
        for ax, ay in ((sfx, sfy), (slx, sly), (ofx, ofy), (olx, oly)):
            self_r = self.half_length * abs(ax * sfx + ay * sfy) + self.half_width * abs(
                ax * slx + ay * sly
            )
            other_r = other.half_length * abs(ax * ofx + ay * ofy) + other.half_width * abs(
                ax * olx + ay * oly
            )
            if abs(dx * ax + dy * ay) > self_r + other_r:
                return False
        return True

    def expanded(self, margin: float) -> "OrientedBox":
        """A copy grown by ``margin`` metres on every side."""
        return OrientedBox(
            self.center, self.yaw, self.half_length + margin, self.half_width + margin
        )

    def ray_hit_distance(self, origin: Vec2, direction: Vec2, max_range: float) -> float | None:
        """Distance at which a ray first hits this box, or ``None``.

        Used by the 2-D LIDAR model and NPC hazard checks.  ``direction``
        need not be normalised.  Plain-float slab test (no intermediate
        :class:`Vec2` objects) with the same arithmetic as the batched
        :func:`batch_ray_hits`.
        """
        n = math.hypot(direction.x, direction.y)
        if n < 1e-12:
            dxn, dyn = 1.0, 0.0
        else:
            dxn, dyn = direction.x / n, direction.y / n
        # Work in the box frame where the box is axis aligned.
        c, s = math.cos(-self.yaw), math.sin(-self.yaw)
        px = origin.x - self.center.x
        py = origin.y - self.center.y
        ox = c * px - s * py
        oy = s * px + c * py
        rx = c * dxn - s * dyn
        ry = s * dxn + c * dyn
        t_min, t_max = 0.0, max_range
        for o_c, r_c, half in ((ox, rx, self.half_length), (oy, ry, self.half_width)):
            if abs(r_c) < 1e-12:
                if abs(o_c) > half:
                    return None
                continue
            t1 = (-half - o_c) / r_c
            t2 = (half - o_c) / r_c
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return None
        if t_min > max_range:
            return None
        return t_min


def pack_boxes(boxes: Sequence["OrientedBox"]) -> np.ndarray:
    """Pack oriented boxes into a ``(B, 6)`` float64 array for batch tests.

    Columns: ``cx, cy, cos(-yaw), sin(-yaw), half_length, half_width`` —
    exactly the scalars :meth:`OrientedBox.ray_hit_distance` derives per
    call, precomputed once so :func:`batch_ray_hits` is pure array math.
    """
    out = np.empty((len(boxes), 6), dtype=np.float64)
    for i, box in enumerate(boxes):
        out[i, 0] = box.center.x
        out[i, 1] = box.center.y
        out[i, 2] = math.cos(-box.yaw)
        out[i, 3] = math.sin(-box.yaw)
        out[i, 4] = box.half_length
        out[i, 5] = box.half_width
    return out


def batch_ray_hits(
    origin: Vec2, directions: np.ndarray, packed: np.ndarray, max_range: float
) -> np.ndarray:
    """First-hit distance of ``R`` rays against ``B`` packed boxes.

    ``directions`` is an ``(R, 2)`` array of unit direction vectors and
    ``packed`` the output of :func:`pack_boxes`.  Returns an ``(R,)``
    float64 array holding, per ray, the nearest hit distance over all
    boxes, or ``max_range`` where every box misses.

    Bit-identical to folding :meth:`OrientedBox.ray_hit_distance` over the
    boxes per ray: every slab division, min/max fold and comparison uses
    the same operands in the same order, just batched over ``(R, B)``.
    """
    directions = np.asarray(directions, dtype=np.float64)
    n_rays = len(directions)
    if len(packed) == 0:
        return np.full(n_rays, max_range, dtype=np.float64)
    cx, cy, c, s, hl, hw = (packed[:, i] for i in range(6))
    # Ray origin in every box frame (same expressions as Vec2.rotated(-yaw)).
    px = origin.x - cx
    py = origin.y - cy
    ox = c * px - s * py  # (B,)
    oy = s * px + c * py
    n_boxes = len(packed)
    # Slab numerators depend only on the box: compute them on (B,) once,
    # laid out as [x-slab | y-slab] so both axes divide in one dispatch.
    nlo = np.empty(2 * n_boxes)
    nhi = np.empty(2 * n_boxes)
    np.subtract(-hl, ox, out=nlo[:n_boxes])
    np.subtract(hl, ox, out=nhi[:n_boxes])
    np.subtract(-hw, oy, out=nlo[n_boxes:])
    np.subtract(hw, oy, out=nhi[n_boxes:])
    dx = directions[:, 0:1]  # (R, 1)
    dy = directions[:, 1:2]
    r2 = np.empty((n_rays, 2 * n_boxes))
    rx = r2[:, :n_boxes]
    ry = r2[:, n_boxes:]
    np.multiply(c[None, :], dx, out=rx)
    rx -= s[None, :] * dy
    np.multiply(s[None, :], dx, out=ry)
    ry += c[None, :] * dy

    abs_r2 = np.abs(r2)
    any_parallel = abs_r2.min() < 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        t1 = nlo / r2
        t2 = nhi / r2
        lo = np.minimum(t1, t2)
        hi = np.maximum(t1, t2)
    if any_parallel:
        # A parallel axis constrains nothing unless the origin lies
        # outside its slab, which is an outright miss (the scalar path's
        # early return).
        par = abs_r2 < 1e-12
        outside = np.empty(2 * n_boxes, dtype=bool)
        np.greater(np.abs(ox), hl, out=outside[:n_boxes])
        np.greater(np.abs(oy), hw, out=outside[n_boxes:])
        miss_2 = par & outside[None, :]
        miss = miss_2[:, :n_boxes] | miss_2[:, n_boxes:]
        lo = np.where(par, -np.inf, lo)
        hi = np.where(par, np.inf, hi)
    t_min = np.maximum(lo[:, :n_boxes], lo[:, n_boxes:])
    np.maximum(t_min, 0.0, out=t_min)
    t_max = np.minimum(hi[:, :n_boxes], hi[:, n_boxes:])
    np.minimum(t_max, max_range, out=t_max)
    hit = t_min <= t_max
    if any_parallel:
        hit &= ~miss
    per_box = np.where(hit, t_min, np.inf)
    return np.minimum(per_box.min(axis=1), max_range)


#: Padding row for ragged box packs: a unit box parked ~1e12 m away.  Any
#: ray either misses its slabs outright or first hits far beyond every
#: finite ``max_range``, so after range clamping it contributes ``inf`` to
#: the per-box fold — the exact value an absent box contributes.
_MISS_BOX = (1.0e12, 1.0e12, 1.0, 0.0, 1.0, 1.0)


def pad_box_packs(packs: Sequence[np.ndarray]) -> np.ndarray:
    """Stack ragged per-episode box packs into one ``(E, B_max, 6)`` slab.

    Episodes see different box counts (actor pruning is pose-dependent);
    short packs are padded with :data:`_MISS_BOX` rows, which are
    guaranteed misses, so :func:`batch_ray_hits_multi` over the padded
    slab returns exactly what per-episode :func:`batch_ray_hits` calls
    would.
    """
    n_eps = len(packs)
    b_max = max((len(p) for p in packs), default=0)
    out = np.empty((n_eps, b_max, 6), dtype=np.float64)
    pad = np.asarray(_MISS_BOX, dtype=np.float64)
    for e, pack in enumerate(packs):
        n = len(pack)
        out[e, :n] = pack
        if n < b_max:
            out[e, n:] = pad
    return out


def batch_ray_hits_multi(
    origins: np.ndarray,
    directions: np.ndarray,
    packed: np.ndarray,
    max_range: float,
) -> np.ndarray:
    """:func:`batch_ray_hits` stacked over ``E`` episodes in one dispatch.

    ``origins`` is ``(E, 2)``, ``directions`` ``(E, R, 2)`` and ``packed``
    ``(E, B, 6)`` (see :func:`pad_box_packs`).  Returns ``(E, R)`` hit
    distances, bit-identical per episode to
    ``batch_ray_hits(origins[e], directions[e], packed[e], max_range)``:
    every elementwise operation below is the same IEEE op on the same
    operands, just with a leading episode axis, and the per-box ``min``
    fold is exact and insensitive to the inf-padded rows.  (The scalar
    path's ``any_parallel`` fast-path gate is dropped here — the gated
    corrections are value-identity wherever no axis is parallel.)
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    n_eps, n_rays = directions.shape[0], directions.shape[1]
    n_boxes = packed.shape[1] if len(packed) else 0
    if n_eps == 0 or n_boxes == 0:
        return np.full((n_eps, n_rays), max_range, dtype=np.float64)
    cx, cy, c, s, hl, hw = (packed[:, :, i] for i in range(6))  # (E, B)
    px = origins[:, 0:1] - cx
    py = origins[:, 1:2] - cy
    ox = c * px - s * py  # (E, B)
    oy = s * px + c * py
    nlo = np.empty((n_eps, 2 * n_boxes))
    nhi = np.empty((n_eps, 2 * n_boxes))
    np.subtract(-hl, ox, out=nlo[:, :n_boxes])
    np.subtract(hl, ox, out=nhi[:, :n_boxes])
    np.subtract(-hw, oy, out=nlo[:, n_boxes:])
    np.subtract(hw, oy, out=nhi[:, n_boxes:])
    dx = directions[:, :, 0:1]  # (E, R, 1)
    dy = directions[:, :, 1:2]
    r2 = np.empty((n_eps, n_rays, 2 * n_boxes))
    rx = r2[:, :, :n_boxes]
    ry = r2[:, :, n_boxes:]
    np.multiply(c[:, None, :], dx, out=rx)
    rx -= s[:, None, :] * dy
    np.multiply(s[:, None, :], dx, out=ry)
    ry += c[:, None, :] * dy

    abs_r2 = np.abs(r2)
    with np.errstate(divide="ignore", invalid="ignore"):
        t1 = nlo[:, None, :] / r2
        t2 = nhi[:, None, :] / r2
        lo = np.minimum(t1, t2)
        hi = np.maximum(t1, t2)
    par = abs_r2 < 1e-12
    outside = np.empty((n_eps, 2 * n_boxes), dtype=bool)
    np.greater(np.abs(ox), hl, out=outside[:, :n_boxes])
    np.greater(np.abs(oy), hw, out=outside[:, n_boxes:])
    miss_2 = par & outside[:, None, :]
    miss = miss_2[:, :, :n_boxes] | miss_2[:, :, n_boxes:]
    lo = np.where(par, -np.inf, lo)
    hi = np.where(par, np.inf, hi)
    t_min = np.maximum(lo[:, :, :n_boxes], lo[:, :, n_boxes:])
    np.maximum(t_min, 0.0, out=t_min)
    t_max = np.minimum(hi[:, :, :n_boxes], hi[:, :, n_boxes:])
    np.minimum(t_max, max_range, out=t_max)
    hit = t_min <= t_max
    hit &= ~miss
    per_box = np.where(hit, t_min, np.inf)
    return np.minimum(per_box.min(axis=2), max_range)


class Polyline:
    """A piecewise-linear path with arc-length parameterisation.

    Lanes, routes and sidewalk paths are all polylines.  Supports
    interpolation by *station* (distance along the path) and nearest-point
    queries returning station plus signed lateral offset.
    """

    def __init__(self, points: Iterable[Vec2]):
        pts = list(points)
        if len(pts) < 2:
            raise ValueError("polyline needs at least two points")
        self._pts = pts
        self._xy = np.array([[p.x, p.y] for p in pts], dtype=np.float64)
        seg = np.diff(self._xy, axis=0)
        self._seg_len = np.hypot(seg[:, 0], seg[:, 1])
        if np.any(self._seg_len < 1e-9):
            raise ValueError("polyline contains zero-length segments")
        self._cum = np.concatenate([[0.0], np.cumsum(self._seg_len)])
        self._seg_dir = seg / self._seg_len[:, None]

    @property
    def points(self) -> list[Vec2]:
        """The defining vertices."""
        return list(self._pts)

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return float(self._cum[-1])

    def point_at(self, station: float) -> Vec2:
        """Point at arc length ``station`` (clamped to the path extent)."""
        s = min(max(station, 0.0), self.length)
        idx = int(np.searchsorted(self._cum, s, side="right") - 1)
        idx = min(idx, len(self._seg_len) - 1)
        t = s - self._cum[idx]
        x = self._xy[idx, 0] + self._seg_dir[idx, 0] * t
        y = self._xy[idx, 1] + self._seg_dir[idx, 1] * t
        return Vec2(float(x), float(y))

    def heading_at(self, station: float) -> float:
        """Tangent heading at arc length ``station``."""
        s = min(max(station, 0.0), self.length - 1e-9)
        idx = int(np.searchsorted(self._cum, s, side="right") - 1)
        idx = min(max(idx, 0), len(self._seg_len) - 1)
        return float(math.atan2(self._seg_dir[idx, 1], self._seg_dir[idx, 0]))

    def locate(self, point: Vec2) -> tuple[float, float]:
        """Nearest-point query.

        Returns ``(station, lateral)`` where ``station`` is the arc length of
        the closest point on the path and ``lateral`` the signed offset
        (positive to the *left* of the path direction).
        """
        p = np.array([point.x, point.y])
        a = self._xy[:-1]
        ab = self._xy[1:] - a
        denom = np.maximum(np.einsum("ij,ij->i", ab, ab), 1e-18)
        t = np.clip(np.einsum("ij,ij->i", p - a, ab) / denom, 0.0, 1.0)
        closest = a + ab * t[:, None]
        d2 = np.einsum("ij,ij->i", p - closest, p - closest)
        idx = int(np.argmin(d2))
        station = float(self._cum[idx] + t[idx] * self._seg_len[idx])
        dir_vec = self._seg_dir[idx]
        rel = p - closest[idx]
        lateral = float(dir_vec[0] * rel[1] - dir_vec[1] * rel[0])
        return station, lateral

    def distance_to(self, point: Vec2) -> float:
        """Unsigned distance from ``point`` to the path."""
        station, _ = self.locate(point)
        closest = self.point_at(station)
        return point.distance_to(closest)

    def resampled(self, spacing: float) -> "Polyline":
        """A copy resampled at approximately uniform ``spacing`` metres."""
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        n = max(2, int(math.ceil(self.length / spacing)) + 1)
        stations = np.linspace(0.0, self.length, n)
        return Polyline([self.point_at(float(s)) for s in stations])

    def offset(self, lateral: float) -> "Polyline":
        """A parallel polyline offset ``lateral`` metres to the left."""
        out: list[Vec2] = []
        n_seg = len(self._seg_len)
        for i in range(len(self._pts)):
            if i == 0:
                d = self._seg_dir[0]
            elif i == len(self._pts) - 1:
                d = self._seg_dir[-1]
            else:
                avg = self._seg_dir[i - 1] + self._seg_dir[i]
                norm = math.hypot(avg[0], avg[1])
                d = avg / norm if norm > 1e-9 else self._seg_dir[min(i, n_seg - 1)]
            normal = Vec2(-float(d[1]), float(d[0]))
            out.append(self._pts[i] + normal * lateral)
        return Polyline(out)

    def reversed(self) -> "Polyline":
        """The same path traversed in the opposite direction."""
        return Polyline(list(reversed(self._pts)))
