"""World simulator substrate: the CARLA/Unreal stand-in.

Public surface re-exported here covers everything campaign code and
examples need: towns, the world, actors, sensors, channels, the
server/client pair, scenarios and violation monitoring.
"""

from .actors import (
    BEHAVIOR_NAMES,
    Actor,
    BehaviorSpec,
    NPCBehavior,
    NPCVehicle,
    Pedestrian,
    Vehicle,
    make_behavior,
)
from .channel import Channel, ChannelTransform, Packet
from .client import Agent, AgentClient
from .geometry import OrientedBox, Polyline, Transform, Vec2, wrap_angle
from .physics import BicycleModel, VehicleControl, VehicleSpec, VehicleState
from .render import CameraModel, Renderer, TownTexture
from .scenario import (
    Mission,
    NPCSpec,
    Scenario,
    derive_scenario_seed,
    generate_missions,
    make_scenarios,
    town_config_from_dict,
    town_config_to_dict,
)
from .render import SemanticClass
from .sensors import (
    GPS,
    Camera,
    DepthCamera,
    Lidar2D,
    SemanticCamera,
    SensorFrame,
    SensorSuite,
    Speedometer,
)
from .server import SimulationServer
from .tasks import TASK_SPECS, Task, TaskSpec, make_task_scenarios
from .town import (
    GridTownConfig,
    Lane,
    LaneRef,
    ProceduralTownConfig,
    SurfaceType,
    Town,
    build_grid_town,
    build_procedural_town,
    build_town,
)
from .violations import ACCIDENT_TYPES, ViolationEvent, ViolationMonitor, ViolationType
from .weather import PRESETS, Weather, get_preset
from .world import DEFAULT_FPS, World

__all__ = [
    "Actor",
    "BEHAVIOR_NAMES",
    "BehaviorSpec",
    "NPCBehavior",
    "NPCVehicle",
    "Pedestrian",
    "Vehicle",
    "make_behavior",
    "Channel",
    "ChannelTransform",
    "Packet",
    "Agent",
    "AgentClient",
    "OrientedBox",
    "Polyline",
    "Transform",
    "Vec2",
    "wrap_angle",
    "BicycleModel",
    "VehicleControl",
    "VehicleSpec",
    "VehicleState",
    "CameraModel",
    "Renderer",
    "TownTexture",
    "Mission",
    "NPCSpec",
    "Scenario",
    "derive_scenario_seed",
    "generate_missions",
    "make_scenarios",
    "town_config_from_dict",
    "town_config_to_dict",
    "GPS",
    "Camera",
    "DepthCamera",
    "SemanticCamera",
    "SemanticClass",
    "Lidar2D",
    "SensorFrame",
    "SensorSuite",
    "Speedometer",
    "SimulationServer",
    "TASK_SPECS",
    "Task",
    "TaskSpec",
    "make_task_scenarios",
    "GridTownConfig",
    "Lane",
    "LaneRef",
    "ProceduralTownConfig",
    "SurfaceType",
    "Town",
    "build_grid_town",
    "build_procedural_town",
    "build_town",
    "ACCIDENT_TYPES",
    "ViolationEvent",
    "ViolationMonitor",
    "ViolationType",
    "PRESETS",
    "Weather",
    "get_preset",
    "DEFAULT_FPS",
    "World",
]
