"""Weather presets and their effects on rendering and sensing.

CARLA exposes weather as a set of named presets that change both what the
camera sees and how other sensors behave.  We model the same surface:
a :class:`Weather` bundles the parameters the renderer (fog, rain,
brightness) and the sensor models (noise scaling) consume, plus a road
friction multiplier used by NPC speed planning.

Weather is part of the *world measurements* AVFI can corrupt ("data faults
... world measurements such as car speed or weather type"), so presets are
addressable by name through :func:`get_preset`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Weather", "PRESETS", "get_preset"]


@dataclass(frozen=True)
class Weather:
    """A weather condition and its sensing/rendering parameters.

    ``fog_density`` in ``[0, 1]`` controls distance fading (0 = clear);
    ``rain_intensity`` in ``[0, 1]`` adds streak noise to camera images;
    ``brightness`` scales the rendered image (night < 1);
    ``sensor_noise_scale`` multiplies the stochastic noise of GPS/speed
    sensors (bad weather degrades them);
    ``friction`` multiplies comfortable NPC cornering/braking speeds.
    """

    name: str
    fog_density: float = 0.0
    rain_intensity: float = 0.0
    brightness: float = 1.0
    sensor_noise_scale: float = 1.0
    friction: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("fog_density", "rain_intensity"):
            v = getattr(self, field_name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{field_name} must be within [0, 1], got {v}")
        if self.brightness <= 0.0:
            raise ValueError("brightness must be positive")


PRESETS: dict[str, Weather] = {
    w.name: w
    for w in (
        Weather("ClearNoon"),
        Weather(
            "CloudyNoon",
            fog_density=0.05,
            brightness=0.85,
            sensor_noise_scale=1.1,
        ),
        Weather(
            "WetNoon",
            rain_intensity=0.25,
            fog_density=0.05,
            brightness=0.9,
            sensor_noise_scale=1.2,
            friction=0.9,
        ),
        Weather(
            "HardRainNoon",
            rain_intensity=0.7,
            fog_density=0.15,
            brightness=0.75,
            sensor_noise_scale=1.5,
            friction=0.75,
        ),
        Weather(
            "FoggyNoon",
            fog_density=0.5,
            brightness=0.8,
            sensor_noise_scale=1.4,
        ),
        Weather(
            "ClearSunset",
            brightness=0.7,
            sensor_noise_scale=1.2,
        ),
        Weather(
            "Night",
            brightness=0.45,
            sensor_noise_scale=1.6,
            fog_density=0.1,
        ),
    )
}


def get_preset(name: str) -> Weather:
    """Look up a weather preset by name.

    Raises ``KeyError`` with the list of known presets on a miss, because a
    typo in a campaign config should fail loudly, not fall back silently.
    """
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown weather preset {name!r}; known presets: {known}") from None
